package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// spanNames collects the distinct span names of a wire trace.
func spanNames(w *qtrace.Wire) map[string]int {
	names := map[string]int{}
	for _, s := range w.Spans {
		names[s.Name]++
	}
	return names
}

// TestTraceBlock exercises the leaf-side trace lifecycle: ?trace=1
// returns a span tree covering every stage, plain requests stay
// trace-free, and traced responses bypass the cache in both directions.
func TestTraceBlock(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8})
	ingest(t, h, "d1", `<r><a><b>x</b></a><a><c>y</c></a></r>`)
	ingest(t, h, "d2", `<r><a><b>z</b></a></r>`)

	plain := topk(t, h, topkRequest{Query: "{a{b}}", K: 2})
	if plain.Trace != nil {
		t.Fatalf("untraced request returned a trace block")
	}
	if !topk(t, h, topkRequest{Query: "{a{b}}", K: 2}).Stats.Cached {
		t.Fatalf("repeat request not served from cache")
	}

	w := doJSON(t, h, "POST", "/v1/topk?trace=1", topkRequest{Query: "{a{b}}", K: 2})
	if w.Code != http.StatusOK {
		t.Fatalf("traced topk: status %d: %s", w.Code, w.Body)
	}
	var resp topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Cached {
		t.Fatalf("traced request must bypass the result cache")
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatalf("?trace=1 returned no trace block")
	}
	if len(tr.TraceID) != 32 || len(tr.SpanID) != 16 {
		t.Fatalf("malformed ids: traceId=%q spanId=%q", tr.TraceID, tr.SpanID)
	}
	if tr.ParentID != "" {
		t.Fatalf("root trace has a parent: %q", tr.ParentID)
	}
	names := spanNames(tr)
	for _, want := range []string{qtrace.SpanParse, qtrace.SpanPlan, qtrace.SpanScan, qtrace.SpanMerge} {
		if names[want] == 0 {
			t.Errorf("trace missing a %q span; got %v", want, names)
		}
	}
	if names[qtrace.SpanScan] != 2 {
		t.Errorf("expected one scan span per document (2), got %d", names[qtrace.SpanScan])
	}
	sawPrune := false
	for _, s := range tr.Spans {
		if s.DurUs < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
		if s.Name == qtrace.SpanScan {
			if s.Detail != "d1" && s.Detail != "d2" {
				t.Errorf("scan span names unknown document %q", s.Detail)
			}
			if s.Prune != nil {
				sawPrune = true
			}
		}
	}
	if !sawPrune {
		t.Errorf("no scan span carries pruning counters")
	}

	// The traced response must not have been cached: the next plain
	// request must carry no trace block even when served from cache.
	again := topk(t, h, topkRequest{Query: "{a{b}}", K: 2})
	if again.Trace != nil {
		t.Fatalf("trace block leaked into the cached plain response")
	}
}

// TestTraceparentContinuation verifies a leaf continues the caller's W3C
// trace context instead of minting its own ids.
func TestTraceparentContinuation(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "d1", `<r><a><b>x</b></a></r>`)

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	body := strings.NewReader(`{"query":"{a{b}}","k":1}`)
	req := httptest.NewRequest("POST", "/v1/topk?trace=1", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace block")
	}
	if resp.Trace.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("leaf minted its own trace id %s instead of continuing the caller's", resp.Trace.TraceID)
	}
	if resp.Trace.ParentID != "00f067aa0ba902b7" {
		t.Errorf("leaf parent id %s != caller span id", resp.Trace.ParentID)
	}
}

// TestRouterTraceStitching is the acceptance path: a traced query through
// a router over a leaf returns one stitched trace — the leaf's block
// nests under the router's shard span, shares the router's trace id, and
// names the router's root span as its parent.
func TestRouterTraceStitching(t *testing.T) {
	cl, _ := newLeaf(t, map[string]string{"a1": `<r><a><b>x</b></a></r>`})
	router := newServer(shard.NewGroup(cl), nil, serverConfig{})

	w := doJSON(t, router, "POST", "/v1/topk?trace=1", topkRequest{Query: "{a{b}}", K: 1})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	root := resp.Trace
	if root == nil {
		t.Fatal("router returned no trace block")
	}
	names := spanNames(root)
	if names[qtrace.SpanShard] == 0 {
		t.Fatalf("router trace has no shard span; got %v", names)
	}
	if len(root.Shards) != 1 {
		t.Fatalf("router trace carries %d leaf blocks, want 1", len(root.Shards))
	}
	leaf := root.Shards[0]
	if leaf.TraceID != root.TraceID {
		t.Errorf("leaf trace id %s != router trace id %s (traceparent not propagated)", leaf.TraceID, root.TraceID)
	}
	if leaf.ParentID != root.SpanID {
		t.Errorf("leaf parent id %s != router span id %s", leaf.ParentID, root.SpanID)
	}
	leafNames := spanNames(leaf)
	if leafNames[qtrace.SpanScan] == 0 {
		t.Errorf("leaf trace has no scan span; got %v", leafNames)
	}
}

// TestSlowlog verifies the slow-query ring: with a 1ns threshold every
// query is slow, entries surface on /debug/slowlog newest first, and the
// counter on /metrics moves.
func TestSlowlog(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{slowQuery: time.Nanosecond})
	ingest(t, h, "d1", `<r><a><b>x</b></a></r>`)
	topk(t, h, topkRequest{Query: "{a{b}}", K: 1})
	topk(t, h, topkRequest{Query: "{a{c}}", K: 1})

	w := doJSON(t, h, "GET", "/debug/slowlog", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/slowlog: status %d", w.Code)
	}
	var out struct {
		ThresholdMs float64     `json:"thresholdMs"`
		Total       uint64      `json:"total"`
		Entries     []slowEntry `json:"entries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || len(out.Entries) != 2 {
		t.Fatalf("want 2 slow queries, got total=%d entries=%d", out.Total, len(out.Entries))
	}
	// Newest first: the {a{c}} query ran last.
	if out.Entries[0].Query != "{a{c}}" || out.Entries[1].Query != "{a{b}}" {
		t.Errorf("entries not newest-first: %+v", out.Entries)
	}
	e := out.Entries[0]
	if e.Endpoint != "/v1/topk" || e.K != 1 || len(e.TraceID) != 32 || e.DurMs < 0 {
		t.Errorf("malformed slow entry: %+v", e)
	}
	if e.ReqID == "" {
		t.Errorf("slow entry lacks the request id")
	}
}

// blockingSearcher is a Searcher stub whose TopK parks inside a scan
// span until released, so a test can observe the query in flight.
type blockingSearcher struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	tr := qtrace.FromContext(ctx)
	span := tr.Begin(qtrace.SpanScan, "blocked-doc")
	close(b.entered)
	<-b.release
	tr.End(span)
	return nil, nil
}

//tasm:allow ctxpoll — test stub: returns immediately, no candidate loop to poll from
func (b *blockingSearcher) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	return nil, nil
}
func (b *blockingSearcher) Docs() []corpus.DocInfo { return nil }
func (b *blockingSearcher) Generation() uint64     { return 0 }

// TestInflightQueries verifies /debug/queries: a running query is listed
// with its live stage from the trace, and vanishes once it completes.
func TestInflightQueries(t *testing.T) {
	b := &blockingSearcher{entered: make(chan struct{}), release: make(chan struct{})}
	h := newServer(b, nil, serverConfig{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		doJSON(t, h, "POST", "/v1/topk", topkRequest{Query: "{a}", K: 1})
	}()
	<-b.entered

	w := doJSON(t, h, "GET", "/debug/queries", nil)
	var out struct {
		Queries []inflightQuery `json:"queries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Queries) != 1 {
		t.Fatalf("want 1 in-flight query, got %d", len(out.Queries))
	}
	q := out.Queries[0]
	if q.Endpoint != "/v1/topk" || q.Query != "{a}" || q.K != 1 {
		t.Errorf("malformed in-flight entry: %+v", q)
	}
	if q.Stage != qtrace.SpanScan || q.Detail != "blocked-doc" {
		t.Errorf("in-flight stage = %q/%q, want scan/blocked-doc", q.Stage, q.Detail)
	}
	if q.ElapsedMs < 0 || len(q.TraceID) != 32 {
		t.Errorf("malformed elapsed/trace id: %+v", q)
	}

	close(b.release)
	<-done
	w = doJSON(t, h, "GET", "/debug/queries", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Queries) != 0 {
		t.Errorf("completed query still listed in /debug/queries: %+v", out.Queries)
	}
}
