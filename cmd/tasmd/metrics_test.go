package main

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"tasm/corpus/shard"
)

// expoFamily tracks one metric family while validating an exposition.
type expoFamily struct {
	kind     string
	hasHelp  bool
	hasType  bool
	samples  int
	declared int // line index of the TYPE line, to enforce header-first
}

// expoHist tracks one histogram series (one label set minus le) while
// validating: bucket cumulativity, +Inf presence, _count agreement.
type expoHist struct {
	lastLe    float64
	lastCum   float64
	buckets   int
	infSeen   bool
	infValue  float64
	count     float64
	countSeen bool
	sumSeen   bool
}

// validateExposition is a strict hand-rolled parser for the Prometheus
// text exposition format (version 0.0.4) covering exactly what tasmd
// emits: every sample's family must have HELP and TYPE lines before its
// first sample, values must parse, counters must be non-negative, and
// every histogram series must have strictly increasing le boundaries,
// non-decreasing cumulative buckets, a +Inf bucket, and _count equal to
// the +Inf cumulative value (the scrape-tear regression this test
// guards: _count used to be a separate counter that could disagree).
func validateExposition(t *testing.T, text string) map[string]*expoFamily {
	t.Helper()
	families := map[string]*expoFamily{}
	hists := map[string]*expoHist{}
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition must end with a newline")
	}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || strings.TrimSpace(parts[1]) == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			f := families[parts[0]]
			if f == nil {
				f = &expoFamily{}
				families[parts[0]] = f
			}
			if f.samples > 0 {
				t.Fatalf("line %d: HELP for %s after its samples", ln+1, parts[0])
			}
			f.hasHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
			}
			f := families[name]
			if f == nil {
				f = &expoFamily{}
				families[name] = f
			}
			if f.samples > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, name)
			}
			f.kind, f.hasType = kind, true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			name, labels, value := parseSampleLine(t, ln+1, line)
			fam, famName := sampleFamily(families, name)
			if fam == nil {
				t.Fatalf("line %d: sample %s without a declared family", ln+1, name)
			}
			if !fam.hasHelp || !fam.hasType {
				t.Fatalf("line %d: family %s missing HELP or TYPE before samples", ln+1, famName)
			}
			fam.samples++
			if fam.kind == "counter" && value < 0 {
				t.Fatalf("line %d: counter %s is negative: %g", ln+1, name, value)
			}
			if fam.kind == "histogram" {
				validateHistSample(t, ln+1, hists, famName, name, labels, value)
			} else if _, ok := labels["le"]; ok {
				t.Fatalf("line %d: non-histogram sample %s has an le label", ln+1, name)
			}
		}
	}
	for key, h := range hists {
		if !h.infSeen {
			t.Errorf("histogram series %s has no +Inf bucket", key)
		}
		if !h.countSeen || !h.sumSeen {
			t.Errorf("histogram series %s missing _count or _sum", key)
		}
		if h.countSeen && h.infSeen && h.count != h.infValue {
			t.Errorf("histogram series %s: _count %g != +Inf bucket %g", key, h.count, h.infValue)
		}
	}
	for name, f := range families {
		if f.samples == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
	}
	return families
}

// sampleFamily resolves a sample name to its family: histogram samples
// use the base name with the _bucket/_sum/_count suffix stripped.
func sampleFamily(families map[string]*expoFamily, name string) (*expoFamily, string) {
	if f, ok := families[name]; ok {
		return f, name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && f.kind == "histogram" {
			return f, base
		}
	}
	return nil, name
}

// validateHistSample folds one histogram sample into its series state.
func validateHistSample(t *testing.T, ln int, hists map[string]*expoHist, famName, name string, labels map[string]string, value float64) {
	t.Helper()
	// The series key is the label set without le, order-normalized by the
	// sorted rebuild below (tasmd only ever emits the shard label).
	key := famName
	if s, ok := labels["shard"]; ok {
		key += "|shard=" + s
	}
	h := hists[key]
	if h == nil {
		h = &expoHist{lastLe: -1}
		hists[key] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le, ok := labels["le"]
		if !ok {
			t.Fatalf("line %d: bucket sample without le label", ln)
		}
		if le == "+Inf" {
			h.infSeen, h.infValue = true, value
			return
		}
		if h.infSeen {
			t.Fatalf("line %d: finite bucket after +Inf in series %s", ln, key)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable le %q", ln, le)
		}
		if bound <= h.lastLe && h.buckets > 0 {
			t.Fatalf("line %d: le %g not increasing in series %s", ln, bound, key)
		}
		if value < h.lastCum {
			t.Fatalf("line %d: bucket %g not cumulative in series %s (%g < %g)", ln, bound, key, value, h.lastCum)
		}
		h.lastLe, h.lastCum, h.buckets = bound, value, h.buckets+1
	case strings.HasSuffix(name, "_sum"):
		h.sumSeen = true
		if value < 0 {
			t.Fatalf("line %d: negative histogram sum in %s", ln, key)
		}
	case strings.HasSuffix(name, "_count"):
		h.countSeen, h.count = true, value
	default:
		t.Fatalf("line %d: sample %s under histogram family %s has no histogram suffix", ln, name, famName)
	}
	if h.infSeen && h.infValue < h.lastCum {
		t.Fatalf("+Inf bucket below last finite bucket in series %s", key)
	}
}

// parseSampleLine splits `name{labels} value` with a small state machine
// honoring the format's label value escapes (\\, \", \n).
func parseSampleLine(t *testing.T, ln int, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	labels = map[string]string{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", ln, line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed labels in %q", ln, line)
			}
			k := rest[:eq]
			rest = rest[eq+2:]
			var sb strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					case 'n':
						sb.WriteByte('\n')
					default:
						t.Fatalf("line %d: unknown escape \\%c", ln, rest[1])
					}
					rest = rest[2:]
					continue
				}
				sb.WriteByte(c)
				rest = rest[1:]
			}
			labels[k] = sb.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = rest[1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(rest, " ") {
		t.Fatalf("line %d: trailing content after value in %q", ln, line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: unparseable value %q: %v", ln, rest, err)
	}
	return name, labels, v
}

// scrapeMetrics fetches /metrics off the handler and validates the whole
// exposition strictly, returning the families for presence assertions.
func scrapeMetrics(t *testing.T, h http.Handler) (string, map[string]*expoFamily) {
	t.Helper()
	w := doJSON(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", w.Code)
	}
	body := w.Body.String()
	return body, validateExposition(t, body)
}

// TestMetricsExpositionLeaf validates every line a busy leaf emits.
func TestMetricsExpositionLeaf(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8, slowQuery: 1})
	ingest(t, h, "d1", `<r><a><b>x</b></a><a><c>y</c></a></r>`)
	ingest(t, h, "d2", `<r><a><b>z</b></a></r>`)
	topk(t, h, topkRequest{Query: "{a{b}}", K: 2})
	topk(t, h, topkRequest{Query: "{a{b}}", K: 2}) // cache hit path
	doJSON(t, h, "POST", "/v1/topk-batch", topkBatchRequest{Queries: []string{"{a{b}}", "{a{c}}"}, K: 1})

	body, families := scrapeMetrics(t, h)
	for _, want := range []string{
		"tasmd_topk_requests_total",
		"tasmd_topk_cache_hits_total",
		"tasmd_topk_latency_seconds",
		"tasmd_topk_batch_latency_seconds",
		"tasmd_slow_queries_total",
		"tasmd_traced_queries_total",
		"tasmd_inflight_queries",
		"tasmd_dict_base_labels",
		"tasmd_corpus_mapped_bytes",
		"tasmd_goroutines",
		"tasmd_gomaxprocs",
		"tasmd_heap_bytes",
		"tasmd_gc_pause_seconds_total",
		"tasmd_process_start_time_seconds",
	} {
		if families[want] == nil {
			t.Errorf("metric family %s missing from leaf exposition", want)
		}
	}
	// The two computed queries (one topk, one batch; the repeat was a
	// cache hit) must be visible in the histogram counts.
	if !strings.Contains(body, "tasmd_topk_latency_seconds_count 2") {
		t.Errorf("expected 2 observed topk requests, exposition:\n%s", body)
	}
}

// TestMetricsExpositionRouter validates a router's exposition, including
// the shard-labelled series of its instrumented shard clients.
func TestMetricsExpositionRouter(t *testing.T) {
	cl0, _ := newLeaf(t, map[string]string{"a1": `<r><a><b>x</b></a></r>`})
	cl1, _ := newLeaf(t, map[string]string{"b1": `<r><a><c>y</c></a></r>`})
	sts := []*shardStats{{name: cl0.Name()}, {name: cl1.Name()}}
	group := shard.NewGroup(
		&instrumentedShard{Client: cl0, st: sts[0]},
		&instrumentedShard{Client: cl1, st: sts[1]},
	)
	router := newServer(group, nil, serverConfig{shards: sts})
	topk(t, router, topkRequest{Query: "{a{b}}", K: 2})

	body, families := scrapeMetrics(t, router)
	for _, want := range []string{
		"tasmd_shard_requests_total",
		"tasmd_shard_errors_total",
		"tasmd_shard_inflight_requests",
		"tasmd_shard_latency_seconds",
	} {
		if families[want] == nil {
			t.Errorf("metric family %s missing from router exposition", want)
		}
	}
	// One query fanned out to both shards: each shard's labelled series
	// must show it.
	for _, st := range sts {
		if !strings.Contains(body, "tasmd_shard_requests_total{shard=\""+st.name+"\"} 1") {
			t.Errorf("per-shard request count for %s missing, exposition:\n%s", st.name, body)
		}
	}
	if families["tasmd_dict_base_labels"] != nil {
		t.Errorf("router must not export the leaf-only base dictionary gauge")
	}
	if families["tasmd_corpus_mapped_bytes"] != nil {
		t.Errorf("router must not export the leaf-only mapped-bytes gauge")
	}
}

// TestMetricsOpenDuration covers the cold-start gauge: set only when the
// server was built over a locally opened corpus.
func TestMetricsOpenDuration(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{openDuration: 42 * time.Millisecond})
	body, families := scrapeMetrics(t, h)
	if families["tasmd_corpus_open_seconds"] == nil {
		t.Fatalf("tasmd_corpus_open_seconds missing, exposition:\n%s", body)
	}
	if !strings.Contains(body, "tasmd_corpus_open_seconds 0.042") {
		t.Errorf("open-duration gauge value wrong, exposition:\n%s", body)
	}
}
