package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/internal/tree"
)

// slowSearcher blocks queries until the request context is cancelled —
// the deterministic "slow scan" for the shutdown regression test. The ctx
// plumbing is exactly what a real corpus scan polls per candidate.
type slowSearcher struct {
	started chan struct{}
}

func (s *slowSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	select {
	case <-s.started:
	default:
		close(s.started)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

func (s *slowSearcher) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (s *slowSearcher) Docs() []corpus.DocInfo { return nil }
func (s *slowSearcher) Generation() uint64     { return 0 }

// TestGracefulShutdownCancelsSlowQuery: a SIGTERM-equivalent (context
// cancellation) while a slow query is in flight must (1) stop accepting
// new connections, (2) give the query the drain window, (3) cancel the
// query's context when the window passes, and (4) return from serve —
// promptly, not after the query would have finished on its own (it never
// would here).
func TestGracefulShutdownCancelsSlowQuery(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowSearcher{started: make(chan struct{})}
	ctx, trigger := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ctx, l, newServer(slow, nil, serverConfig{}), 200*time.Millisecond)
	}()

	// Fire the slow query.
	queryDone := make(chan string, 1)
	go func() {
		resp, err := http.Post("http://"+l.Addr().String()+"/v1/topk", "application/json",
			strings.NewReader(`{"query":"{a}","k":1}`))
		if err != nil {
			queryDone <- fmt.Sprintf("transport error: %v", err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		queryDone <- fmt.Sprintf("%d %s", resp.StatusCode, body)
	}()
	<-slow.started // the handler reached the backend and is blocking

	trigger() // SIGINT/SIGTERM arrives
	select {
	case res := <-queryDone:
		// The drain window passed, the request context was cancelled, and
		// the in-flight query must have been answered 503 (or had its
		// connection torn down by Close — either way it returned).
		if strings.HasPrefix(res, "503") && !strings.Contains(res, "cancelled") {
			t.Errorf("unexpected 503 body: %s", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query still blocked 5s after shutdown; ctx cancellation did not reach the scan")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return within 5s of shutdown")
	}

	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + l.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}

// TestGracefulShutdownDrainsFastQueries: a query that completes within
// the drain window is answered normally, and serve exits cleanly.
func TestGracefulShutdownDrainsFastQueries(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("d", strings.NewReader(`<r><a><b>x</b></a></r>`)); err != nil {
		t.Fatal(err)
	}
	ctx, trigger := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ctx, l, newServer(c, c, serverConfig{}), 5*time.Second)
	}()
	resp, err := http.Post("http://"+l.Addr().String()+"/v1/topk", "application/json",
		strings.NewReader(`{"query":"{a{b{x}}}","k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var tr topkResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tr.Matches) != 1 || tr.Matches[0].Dist != 0 {
		t.Fatalf("unexpected answer before shutdown: %+v", tr)
	}
	trigger()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain with no in-flight work")
	}
}
