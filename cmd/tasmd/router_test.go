package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
)

// newLeaf builds a leaf tasmd handler over its own corpus, serves it from
// an httptest server, and returns a shard client pointing at it.
func newLeaf(t *testing.T, docs map[string]string) (*shard.Client, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, xml := range docs {
		if _, err := c.AddXML(name, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(newServer(c, c, serverConfig{}))
	t.Cleanup(srv.Close)
	cl, err := shard.NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cl, c
}

// TestRouterOverLeaves is the two-tier integration test: a router handler
// serving a shard.Group of shard.Clients over two leaf tasmd handlers
// must answer HTTP queries identically to one corpus holding all the
// documents, route batch requests, refuse ingests, and aggregate /v1/docs
// and /healthz.
func TestRouterOverLeaves(t *testing.T) {
	leafDocs := []map[string]string{
		{"a1": `<r><rec><x>1</x><y>2</y></rec><rec><x>1</x></rec></r>`},
		{"b1": `<r><rec><x>1</x><y>3</y></rec><other><z>9</z></other></r>`},
	}
	cl0, c0 := newLeaf(t, leafDocs[0])
	cl1, _ := newLeaf(t, leafDocs[1])
	_ = c0

	// The union oracle ingests the same documents in shard order.
	union, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, docs := range leafDocs {
		for name, xml := range docs {
			if _, err := union.AddXML(name, strings.NewReader(xml)); err != nil {
				t.Fatal(err)
			}
		}
	}

	router := newServer(shard.NewGroup(cl0, cl1), nil, serverConfig{})

	// Query through the router; compare against the union corpus.
	reqBody := `{"query":"{rec{x{1}}{y{2}}}","k":3,"trees":true}`
	w := doJSON(t, router, "POST", "/v1/topk", reqBody)
	if w.Code != http.StatusOK {
		t.Fatalf("router topk: status %d: %s", w.Code, w.Body)
	}
	var got topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	q, err := union.ParseBracket("{rec{x{1}}{y{2}}}")
	if err != nil {
		t.Fatal(err)
	}
	want, err := union.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want) {
		t.Fatalf("router returned %d matches, union %d", len(got.Matches), len(want))
	}
	for i, m := range got.Matches {
		u := want[i]
		if m.Doc != u.Doc.Name || m.Pos != u.Pos || m.Dist != u.Dist || m.Size != u.Size || m.Tree != u.Tree.String() {
			t.Errorf("match %d differs: router %+v union name=%s pos=%d dist=%g size=%d",
				i, m, u.Doc.Name, u.Pos, u.Dist, u.Size)
		}
	}
	if got.Stats.Scanned+got.Stats.Skipped == 0 {
		t.Error("router stats empty; per-shard stats not aggregated")
	}

	// Batch through the router.
	bw := doJSON(t, router, "POST", "/v1/topk-batch", `{"queries":["{rec{x{1}}}","{other{z{9}}}"],"k":2}`)
	if bw.Code != http.StatusOK {
		t.Fatalf("router batch: status %d: %s", bw.Code, bw.Body)
	}
	var batch topkBatchResponse
	if err := json.Unmarshal(bw.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || len(batch.Results[0]) == 0 || len(batch.Results[1]) == 0 {
		t.Fatalf("router batch results malformed: %+v", batch.Results)
	}
	if batch.Results[1][0].Doc != "b1" || batch.Results[1][0].Dist != 0 {
		t.Errorf("batch query 2 should find its exact subtree in b1: %+v", batch.Results[1][0])
	}

	// Aggregated listing and health.
	lw := doJSON(t, router, "GET", "/v1/docs", nil)
	if !strings.Contains(lw.Body.String(), `"a1"`) || !strings.Contains(lw.Body.String(), `"b1"`) {
		t.Errorf("router /v1/docs does not aggregate shards: %s", lw.Body)
	}
	hw := doJSON(t, router, "GET", "/healthz", nil)
	var health struct {
		Docs int `json:"docs"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil || health.Docs != 2 {
		t.Errorf("router healthz docs = %d, want 2 (%s)", health.Docs, hw.Body)
	}

	// Routers are read-only.
	iw := doJSON(t, router, "POST", "/v1/docs", ingestRequest{Name: "x", XML: "<a/>"})
	if iw.Code != http.StatusNotImplemented {
		t.Errorf("router ingest: status %d, want 501", iw.Code)
	}
	dw := doJSON(t, router, "DELETE", "/v1/docs/a1", nil)
	if dw.Code != http.StatusNotImplemented {
		t.Errorf("router delete: status %d, want 501", dw.Code)
	}

	// Metrics work without a local corpus (no base-dictionary gauge).
	mw := doJSON(t, router, "GET", "/metrics", nil)
	if mw.Code != http.StatusOK || !strings.Contains(mw.Body.String(), "tasmd_corpus_docs 2") {
		t.Errorf("router metrics: status %d body %s", mw.Code, mw.Body)
	}
}

// TestRouterShardDownIs500: an unreachable leaf fails the query with a
// 500 naming the shard.
func TestRouterShardDownIs500(t *testing.T) {
	cl0, _ := newLeaf(t, map[string]string{"a1": `<r><rec><x>1</x></rec></r>`})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more
	clDead, err := shard.NewClient(deadURL)
	if err != nil {
		t.Fatal(err)
	}
	router := newServer(shard.NewGroup(cl0, clDead), nil, serverConfig{})
	w := doJSON(t, router, "POST", "/v1/topk", `{"query":"{rec{x{1}}}","k":1}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("dead shard: status %d, want 500 (%s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), deadURL) {
		t.Errorf("error does not name the dead shard %s: %s", deadURL, w.Body)
	}
}

// TestRemoveEndpoint: DELETE /v1/docs/{name} tombstones on a leaf,
// invalidates the cache via the generation bump, and 404s unknown names.
func TestRemoveEndpoint(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8})
	ingest(t, h, "keep", `<r><a><b>x</b></a></r>`)
	ingest(t, h, "drop", `<r><a><b>x</b></a></r>`)

	req := topkRequest{Query: "{a{b{x}}}", K: 2}
	first := topk(t, h, req)
	if len(first.Matches) != 2 {
		t.Fatalf("want 2 matches before removal, got %d", len(first.Matches))
	}

	w := doJSON(t, h, "DELETE", "/v1/docs/drop", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", w.Code, w.Body)
	}
	// The generation bumped: the cached 2-match answer must not be served.
	after := topk(t, h, req)
	if after.Stats.Cached {
		t.Fatal("cache served a pre-removal answer")
	}
	for _, m := range after.Matches {
		if m.Doc == "drop" {
			t.Fatalf("removed document still ranked: %+v", m)
		}
	}

	if w := doJSON(t, h, "DELETE", "/v1/docs/drop", nil); w.Code != http.StatusNotFound {
		t.Errorf("re-delete: status %d, want 404", w.Code)
	}
	if w := doJSON(t, h, "DELETE", "/v1/docs/ghost", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown delete: status %d, want 404", w.Code)
	}
}

// TestRunFlagParsing pins run's topology parsing: the "|" replica
// syntax builds a server that comes up (and shuts straight down under
// an already-cancelled context), bad URLs and contradictory flags fail.
func TestRunFlagParsing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "", "http://127.0.0.1:1|http://127.0.0.1:2, http://127.0.0.1:3", time.Millisecond,
		"127.0.0.1:0", "", corpus.VerifyScrub, serverConfig{}, time.Millisecond)
	if err != nil {
		t.Fatalf("replica syntax: %v", err)
	}
	if err := run(ctx, "", "://bad", 0, "127.0.0.1:0", "", corpus.VerifyScrub, serverConfig{}, time.Millisecond); err == nil {
		t.Fatal("invalid shard URL accepted")
	}
	if err := run(ctx, "", "", 0, "127.0.0.1:0", "", corpus.VerifyScrub, serverConfig{}, time.Millisecond); err == nil {
		t.Fatal("neither -dir nor -shards accepted")
	}
	if err := run(ctx, t.TempDir(), "http://x", 0, "127.0.0.1:0", "", corpus.VerifyScrub, serverConfig{}, time.Millisecond); err == nil {
		t.Fatal("both -dir and -shards accepted")
	}
}

// TestRouterPartialDegradation drives the degraded path end to end over
// HTTP: a router over one live leaf and one dead shard fails by default,
// answers with "partial":true naming the degraded shard in the response
// stats, never caches the degraded answer, and exports the degradation
// and breaker state on /metrics.
func TestRouterPartialDegradation(t *testing.T) {
	clLive, _ := newLeaf(t, map[string]string{"a1": `<r><rec><x>1</x></rec></r>`})
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close() // nothing listens here any more
	clDead, err := shard.NewClient(deadURL, shard.WithRetryPolicy(shard.RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Wire the same per-shard telemetry run() builds, so /metrics carries
	// the breaker gauge for both shards.
	stLive := &shardStats{name: clLive.Name(), breaker: clLive.BreakerState}
	stDead := &shardStats{name: clDead.Name(), breaker: clDead.BreakerState}
	router := newServer(
		shard.NewGroup(&instrumentedShard{Client: clLive, st: stLive}, &instrumentedShard{Client: clDead, st: stDead}),
		nil,
		serverConfig{cacheSize: 8, shards: []*shardStats{stLive, stDead}})

	// Default: fail loud.
	w := doJSON(t, router, "POST", "/v1/topk", `{"query":"{rec{x{1}}}","k":2}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("default mode: status %d, want 500 (%s)", w.Code, w.Body)
	}

	// Partial: the survivor answers, the loss is reported.
	pReq := `{"query":"{rec{x{1}}}","k":2,"partial":true}`
	w = doJSON(t, router, "POST", "/v1/topk", pReq)
	if w.Code != http.StatusOK {
		t.Fatalf("partial mode: status %d (%s)", w.Code, w.Body)
	}
	var resp topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 || resp.Matches[0].Doc != "a1" {
		t.Fatalf("partial answer lost the survivor's matches: %+v", resp.Matches)
	}
	if len(resp.Stats.Degraded) != 1 || resp.Stats.Degraded[0] != deadURL {
		t.Fatalf("stats.degraded = %v, want [%s]", resp.Stats.Degraded, deadURL)
	}

	// A degraded answer must not be served from the cache once the shard
	// recovers — it is never cached at all.
	w = doJSON(t, router, "POST", "/v1/topk", pReq)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Cached {
		t.Fatal("degraded answer was cached")
	}

	// Batch degrades the same way.
	w = doJSON(t, router, "POST", "/v1/topk-batch", `{"queries":["{rec{x{1}}}"],"k":2,"partial":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("partial batch: status %d (%s)", w.Code, w.Body)
	}
	var bresp topkBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 1 || len(bresp.Results[0]) == 0 {
		t.Fatalf("partial batch lost the survivor's matches: %+v", bresp.Results)
	}
	if len(bresp.Stats.Degraded) != 1 {
		t.Fatalf("batch stats.degraded = %v, want one shard", bresp.Stats.Degraded)
	}

	// The degradation and the breaker state are visible on /metrics.
	mw := doJSON(t, router, "GET", "/metrics", nil)
	body := mw.Body.String()
	for _, want := range []string{"tasmd_degraded_queries_total 3", "tasmd_degraded_shards_total 3", "tasmd_shard_breaker_state"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
