package main

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"tasm/corpus"
)

// serverMetrics accumulates the daemon's lifetime counters, exported on
// GET /metrics in Prometheus text exposition format. Everything is a
// plain atomic counter updated on the request path, so scraping never
// contends with query answering.
type serverMetrics struct {
	topkRequests atomic.Uint64 // top-k requests accepted (cache hits included)
	cacheHits    atomic.Uint64 // top-k requests answered from the result cache
	ingests      atomic.Uint64 // documents ingested

	// Aggregated corpus.Stats of every computed (non-cached) top-k run.
	docsScanned     atomic.Uint64
	docsSkipped     atomic.Uint64
	docsUnprofiled  atomic.Uint64
	candHistSkipped atomic.Uint64
	tedAborted      atomic.Uint64
	evaluated       atomic.Uint64
}

// observe folds one computed top-k run's statistics into the totals.
func (m *serverMetrics) observe(s *corpus.Stats) {
	m.docsScanned.Add(uint64(s.Scanned))
	m.docsSkipped.Add(uint64(s.Skipped))
	m.docsUnprofiled.Add(uint64(s.Unprofiled))
	m.candHistSkipped.Add(s.HistSkipped)
	m.tedAborted.Add(s.TEDAborted)
	m.evaluated.Add(s.Evaluated)
}

// handleMetrics serves the Prometheus text exposition format (version
// 0.0.4; counters and gauges only, no labels, so no escaping is needed).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := &s.metrics
	for _, c := range []struct {
		name, kind, help string
		value            uint64
	}{
		{"tasmd_topk_requests_total", "counter", "Top-k requests accepted.", m.topkRequests.Load()},
		{"tasmd_topk_cache_hits_total", "counter", "Top-k requests answered from the result cache.", m.cacheHits.Load()},
		{"tasmd_ingests_total", "counter", "Documents ingested.", m.ingests.Load()},
		{"tasmd_docs_scanned_total", "counter", "Documents streamed through TASM-postorder.", m.docsScanned.Load()},
		{"tasmd_docs_skipped_total", "counter", "Documents skipped by the document-level label lower bound.", m.docsSkipped.Load()},
		{"tasmd_docs_unprofiled_total", "counter", "Documents scanned without a usable profile.", m.docsUnprofiled.Load()},
		{"tasmd_candidates_hist_skipped_total", "counter", "Candidate subtrees skipped by the histogram-intersection lower bound.", m.candHistSkipped.Load()},
		{"tasmd_ted_evals_aborted_total", "counter", "Subtree evaluations abandoned early by the bounded Zhang-Shasha DP.", m.tedAborted.Load()},
		{"tasmd_ted_evals_completed_total", "counter", "Subtree evaluations run to completion.", m.evaluated.Load()},
		{"tasmd_corpus_docs", "gauge", "Documents currently in the corpus.", uint64(s.c.Len())},
		{"tasmd_corpus_generation", "gauge", "Corpus generation (increments on ingest).", uint64(s.c.Generation())},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", c.name, c.help, c.name, c.kind, c.name, c.value)
	}
}
