package main

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
)

// processStart anchors tasmd_process_start_time_seconds: the moment the
// process (strictly: this package's initialization) began.
var processStart = time.Now()

// latencyBuckets are the fixed per-request latency histogram boundaries
// in seconds. They span sub-millisecond cache hits to multi-second scans
// of large corpora; everything slower lands in the implicit +Inf bucket.
var latencyBuckets = [numLatencyBuckets]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numLatencyBuckets is the number of finite histogram boundaries.
const numLatencyBuckets = 13

// latencyHistogram is a fixed-bucket Prometheus histogram maintained with
// atomic counters only, so observing a request never takes a lock and
// scraping never contends with query answering. Buckets hold non-
// cumulative counts; the cumulative sums required by the exposition
// format are computed at scrape time.
type latencyHistogram struct {
	buckets [numLatencyBuckets + 1]atomic.Uint64 // last is +Inf
	sumNs   atomic.Uint64
}

// observe records one request duration.
func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < numLatencyBuckets && s > latencyBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// writeHeader emits the HELP/TYPE preamble shared by every series of the
// metric (a labelled histogram family emits it once, then one series per
// label set).
func writeHistogramHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// writeSeries emits one series of the histogram. labels is either empty
// or a comma-terminated rendered label prefix like `shard="db1",` — the
// le label is appended after it, keeping le last as is conventional.
//
// The sample lines are derived from ONE pass over the buckets: _count is
// the +Inf cumulative value by construction, so a scrape racing
// concurrent observes can never expose `_count` disagreeing with the
// +Inf bucket (a previous version kept a separate count counter and
// loaded it after summing the buckets, which could tear).
func (h *latencyHistogram) writeSeries(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, le, cum)
	}
	cum += h.buckets[numLatencyBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

// write emits an unlabelled histogram (header + its only series).
func (h *latencyHistogram) write(w io.Writer, name, help string) {
	writeHistogramHeader(w, name, help)
	h.writeSeries(w, name, "")
}

// escapeLabelValue escapes a Prometheus label value per the text
// exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// shardStats instruments one shard of a router: request/error totals, an
// in-flight gauge and a latency histogram, each exported on /metrics as
// a per-shard series labelled with the shard's name. Updated by the
// instrumentedShard wrapper around shard.Client (see observe.go).
type shardStats struct {
	name     string
	requests atomic.Uint64
	errors   atomic.Uint64
	inflight atomic.Int64
	latency  latencyHistogram
	// breaker reports the shard client's circuit-breaker state for the
	// tasmd_shard_breaker_state gauge; nil when the child has none.
	breaker func() shard.BreakerState
}

// serverMetrics accumulates the daemon's lifetime counters, exported on
// GET /metrics in Prometheus text exposition format. Everything is a
// plain atomic counter updated on the request path, so scraping never
// contends with query answering.
type serverMetrics struct {
	topkRequests  atomic.Uint64 // top-k requests accepted (cache hits included)
	batchRequests atomic.Uint64 // batch requests accepted (cache hits included)
	batchQueries  atomic.Uint64 // queries carried by batch requests
	cacheHits     atomic.Uint64 // requests answered from the result cache
	ingests       atomic.Uint64 // documents ingested
	ingestErrors  atomic.Uint64 // ingest requests rejected or failed (oversized bodies included)
	removes       atomic.Uint64 // documents removed
	slowQueries   atomic.Uint64 // queries at or above the slow-query threshold
	tracedQueries atomic.Uint64 // queries that requested a trace block (?trace=1)

	// Aggregated corpus.Stats of every computed (non-cached) run.
	docsScanned     atomic.Uint64
	docsSkipped     atomic.Uint64
	docsUnprofiled  atomic.Uint64
	candHistSkipped atomic.Uint64
	tedAborted      atomic.Uint64
	evaluated       atomic.Uint64
	// overlayLabels totals the request-local labels computed runs held in
	// their per-request dictionary overlays — labels that on a shared
	// mutable dictionary would have leaked into process memory forever.
	overlayLabels atomic.Uint64

	// Fault-tolerance accounting of a router's computed runs.
	retries         atomic.Uint64 // extra per-shard request attempts after failures
	hedges          atomic.Uint64 // hedge/failover requests fired at replicas
	breakerSkips    atomic.Uint64 // replica attempts refused by an open breaker
	degradedQueries atomic.Uint64 // queries answered best-effort with shards missing
	degradedShards  atomic.Uint64 // shard outages those degraded answers absorbed

	// Per-request latency, cache hits included (they are requests too).
	topkLatency  latencyHistogram
	batchLatency latencyHistogram
}

// observe folds one computed run's statistics into the totals.
func (m *serverMetrics) observe(s *corpus.Stats) {
	m.docsScanned.Add(uint64(s.Scanned))
	m.docsSkipped.Add(uint64(s.Skipped))
	m.docsUnprofiled.Add(uint64(s.Unprofiled))
	m.candHistSkipped.Add(s.HistSkipped)
	m.tedAborted.Add(s.TEDAborted)
	m.evaluated.Add(s.Evaluated)
	m.overlayLabels.Add(uint64(s.OverlayLabels))
	m.retries.Add(s.Retries)
	m.hedges.Add(s.Hedges)
	m.breakerSkips.Add(uint64(len(s.BreakerSkipped)))
	if len(s.Degraded) > 0 {
		m.degradedQueries.Add(1)
		m.degradedShards.Add(uint64(len(s.Degraded)))
	}
}

// handleMetrics serves the Prometheus text exposition format (version
// 0.0.4; counters, gauges and fixed-bucket histograms).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := &s.metrics
	for _, c := range []struct {
		name, kind, help string
		value            uint64
	}{
		{"tasmd_topk_requests_total", "counter", "Top-k requests accepted.", m.topkRequests.Load()},
		{"tasmd_topk_batch_requests_total", "counter", "Batch top-k requests accepted.", m.batchRequests.Load()},
		{"tasmd_topk_batch_queries_total", "counter", "Queries carried by batch top-k requests.", m.batchQueries.Load()},
		{"tasmd_topk_cache_hits_total", "counter", "Requests answered from the result cache.", m.cacheHits.Load()},
		{"tasmd_ingests_total", "counter", "Documents ingested.", m.ingests.Load()},
		{"tasmd_ingest_errors_total", "counter", "Ingest requests rejected or failed (oversized bodies, malformed XML, duplicate names).", m.ingestErrors.Load()},
		{"tasmd_removes_total", "counter", "Documents removed.", m.removes.Load()},
		{"tasmd_slow_queries_total", "counter", "Queries that took at least the -slow-query threshold (recorded in /debug/slowlog).", m.slowQueries.Load()},
		{"tasmd_traced_queries_total", "counter", "Queries that requested a per-response trace block (?trace=1).", m.tracedQueries.Load()},
		{"tasmd_docs_scanned_total", "counter", "Documents streamed through TASM-postorder.", m.docsScanned.Load()},
		{"tasmd_docs_skipped_total", "counter", "Documents skipped by the document-level label lower bound.", m.docsSkipped.Load()},
		{"tasmd_docs_unprofiled_total", "counter", "Documents scanned without a usable profile.", m.docsUnprofiled.Load()},
		{"tasmd_candidates_hist_skipped_total", "counter", "Candidate subtrees skipped by the histogram-intersection lower bound.", m.candHistSkipped.Load()},
		{"tasmd_ted_evals_aborted_total", "counter", "Subtree evaluations abandoned early by the bounded Zhang-Shasha DP.", m.tedAborted.Load()},
		{"tasmd_ted_evals_completed_total", "counter", "Subtree evaluations run to completion.", m.evaluated.Load()},
		{"tasmd_overlay_labels_total", "counter", "Request-local labels held in per-request dictionary overlays (released with each request).", m.overlayLabels.Load()},
		{"tasmd_shard_retries_total", "counter", "Extra per-shard request attempts after retryable failures.", m.retries.Load()},
		{"tasmd_shard_hedges_total", "counter", "Hedge and failover requests fired at replicas of replicated shards.", m.hedges.Load()},
		{"tasmd_breaker_skips_total", "counter", "Replica attempts refused locally by an open circuit breaker.", m.breakerSkips.Load()},
		{"tasmd_degraded_queries_total", "counter", "Queries answered best-effort (partial=true) with at least one shard missing.", m.degradedQueries.Load()},
		{"tasmd_degraded_shards_total", "counter", "Shard outages absorbed by degraded answers (one per missing shard per query).", m.degradedShards.Load()},
		{"tasmd_inflight_queries", "gauge", "Queries currently executing (see /debug/queries).", uint64(s.inflight.len())},
		{"tasmd_corpus_docs", "gauge", "Documents currently served (all shards for a router; cached, eventually consistent there).", uint64(s.numDocs())},
		{"tasmd_corpus_generation", "gauge", "Backend generation (changes whenever the document set does).", s.src.Generation()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", c.name, c.help, c.name, c.kind, c.name, c.value)
	}
	// The base-dictionary gauge only exists for backends that own one (a
	// local corpus); a router's shards each export their own.
	if d, ok := s.src.(interface{ DictLen() int }); ok {
		fmt.Fprintf(w, "# HELP tasmd_dict_base_labels Labels in the frozen corpus base dictionary (grows only on ingest, never on queries).\n# TYPE tasmd_dict_base_labels gauge\ntasmd_dict_base_labels %d\n", d.DictLen())
	}
	// The quarantine gauge likewise exists only for backends with local
	// files: it reports the corpus's lifetime count of documents its
	// integrity scrub removed from serving. Alert on it being non-zero.
	if q, ok := s.src.(interface{ Quarantined() int }); ok {
		fmt.Fprintf(w, "# HELP tasmd_quarantined_docs Documents quarantined by the integrity scrub (files preserved under quarantine/; non-zero means data loss pending operator action).\n# TYPE tasmd_quarantined_docs gauge\ntasmd_quarantined_docs %d\n", q.Quarantined())
	}
	// Memory-mapped store bytes: file-backed pages the kernel can evict
	// under pressure, so they are not heap (compare tasmd_heap_bytes).
	// Exists only for backends that map local stores.
	if mb, ok := s.src.(interface{ MappedBytes() int64 }); ok {
		fmt.Fprintf(w, "# HELP tasmd_corpus_mapped_bytes Committed store bytes served from read-only memory mappings (0 when mmap is disabled or unsupported).\n# TYPE tasmd_corpus_mapped_bytes gauge\ntasmd_corpus_mapped_bytes %d\n", mb.MappedBytes())
	}
	if s.cfg.openDuration > 0 {
		fmt.Fprintf(w, "# HELP tasmd_corpus_open_seconds Cold-start cost of opening the backend (manifest load, scrub, profile decode, store mapping).\n# TYPE tasmd_corpus_open_seconds gauge\ntasmd_corpus_open_seconds %g\n", s.cfg.openDuration.Seconds())
	}
	m.topkLatency.write(w, "tasmd_topk_latency_seconds", "Per-request latency of POST /v1/topk (cache hits included).")
	m.batchLatency.write(w, "tasmd_topk_batch_latency_seconds", "Per-request latency of POST /v1/topk-batch (cache hits included).")
	s.writeShardMetrics(w)
	writeRuntimeMetrics(w)
}

// writeShardMetrics emits the router's per-shard series: request/error
// totals, the in-flight gauge, and one latency histogram series per
// shard under a single family header. A leaf (no shards) emits nothing.
func (s *server) writeShardMetrics(w io.Writer) {
	if len(s.shards) == 0 {
		return
	}
	for _, c := range []struct {
		name, kind, help string
		value            func(*shardStats) int64
	}{
		{"tasmd_shard_requests_total", "counter", "Query requests fanned out to the shard (topk and topk-batch).",
			func(st *shardStats) int64 { return int64(st.requests.Load()) }},
		{"tasmd_shard_errors_total", "counter", "Shard query requests that failed.",
			func(st *shardStats) int64 { return int64(st.errors.Load()) }},
		{"tasmd_shard_inflight_requests", "gauge", "Shard query requests currently in flight.",
			func(st *shardStats) int64 { return st.inflight.Load() }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.kind)
		for _, st := range s.shards {
			fmt.Fprintf(w, "%s{shard=\"%s\"} %d\n", c.name, escapeLabelValue(st.name), c.value(st))
		}
	}
	writeHistogramHeader(w, "tasmd_shard_latency_seconds", "Per-shard latency of fanned-out query requests, observed at the router.")
	for _, st := range s.shards {
		st.latency.writeSeries(w, "tasmd_shard_latency_seconds", fmt.Sprintf("shard=%q,", escapeLabelValue(st.name)))
	}
	// The breaker gauge family appears only when some shard has one, so a
	// family is never declared without samples.
	declared := false
	for _, st := range s.shards {
		if st.breaker == nil {
			continue
		}
		if !declared {
			fmt.Fprint(w, "# HELP tasmd_shard_breaker_state Circuit-breaker state of the shard client (0 closed, 1 half-open, 2 open).\n# TYPE tasmd_shard_breaker_state gauge\n")
			declared = true
		}
		fmt.Fprintf(w, "tasmd_shard_breaker_state{shard=\"%s\"} %d\n", escapeLabelValue(st.name), int(st.breaker()))
	}
}

// writeRuntimeMetrics emits Go runtime gauges: goroutines, heap bytes,
// cumulative GC pause, GOMAXPROCS and the process start time. One
// ReadMemStats per scrape (a sub-millisecond stop-the-world) is the
// standard price of heap visibility.
func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, c := range []struct {
		name, kind, help string
		value            float64
	}{
		{"tasmd_goroutines", "gauge", "Goroutines currently live.", float64(runtime.NumGoroutine())},
		{"tasmd_gomaxprocs", "gauge", "GOMAXPROCS of the process.", float64(runtime.GOMAXPROCS(0))},
		{"tasmd_heap_bytes", "gauge", "Heap bytes currently allocated and in use (runtime.MemStats.HeapAlloc).", float64(ms.HeapAlloc)},
		{"tasmd_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs) / 1e9},
		{"tasmd_gc_cycles_total", "counter", "Completed GC cycles.", float64(ms.NumGC)},
		{"tasmd_process_start_time_seconds", "gauge", "Unix time the process started.", float64(processStart.UnixNano()) / 1e9},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", c.name, c.help, c.name, c.kind, c.name, c.value)
	}
}
