package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"tasm/corpus"
	"tasm/internal/dict"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
	"tasm/internal/xmlstream"
)

// defaultMaxBodyBytes caps request bodies when -max-body-bytes is not
// given: queries are small, and ingested documents beyond this belong on
// the filesystem next to the corpus, not in an HTTP body.
const defaultMaxBodyBytes = 64 << 20

// serverConfig tunes the daemon.
type serverConfig struct {
	// maxBodyBytes caps every request body; overflowing it is a 413.
	// ≤ 0 means defaultMaxBodyBytes.
	maxBodyBytes int64
	// cacheSize bounds the (query, k) result LRU; ≤ 0 disables caching.
	cacheSize int
	// maxConcurrent bounds in-flight top-k computations; ≤ 0 means
	// unbounded.
	maxConcurrent int
	// workers is the per-request worker pool applied when a request does
	// not choose its own (0 = sequential scan).
	workers int
	// maxK rejects requests asking for more results than the server is
	// willing to rank.
	maxK int
	// maxBatch rejects batch requests carrying more queries than the
	// server is willing to scan for in one pass.
	maxBatch int
	// slowQuery is the slow-query log threshold; queries running at least
	// this long are recorded in /debug/slowlog. 0 disables the log.
	slowQuery time.Duration
	// logger receives the structured request log; nil discards it.
	logger *slog.Logger
	// shards carries the per-shard telemetry of a router backend (one
	// entry per shard, exported on /metrics); nil for a leaf.
	shards []*shardStats
	// openDuration is the cold-start cost of the backend (corpus.Open:
	// manifest load, scrub, profile decode, store mapping); zero when the
	// backend has no local open phase (a shard router).
	openDuration time.Duration
}

// queryParser is the optional backend interface for parsing queries in
// the backend's own dictionary context. *corpus.Corpus implements it
// (queries then resolve through an overlay over the corpus dictionary);
// backends without one — a shard group, a remote client — fall back to a
// fresh per-request dictionary, which the Searcher contract re-interns.
type queryParser interface {
	ParseBracket(s string) (*tree.Tree, error)
	ParseXML(r io.Reader) (*tree.Tree, error)
}

// server routes the tasmd HTTP API over one shared Searcher backend: a
// local corpus directory, or a scatter-gather group of remote shards.
// Ingest endpoints require the backend to also be an Ingester (a local
// corpus); a router serves queries only.
type server struct {
	src      corpus.Searcher
	ing      corpus.Ingester // nil: read-only backend (shard router)
	cfg      serverConfig
	cache    *lruCache
	sem      chan struct{}
	metrics  serverMetrics
	log      *slog.Logger
	slow     *slowLog
	inflight *inflightRegistry
	shards   []*shardStats
}

// newServer returns the daemon's http.Handler over the given backend.
// ing may be nil for read-only backends.
func newServer(src corpus.Searcher, ing corpus.Ingester, cfg serverConfig) http.Handler {
	if cfg.maxK <= 0 {
		cfg.maxK = 10000
	}
	if cfg.maxBatch <= 0 {
		cfg.maxBatch = 1024
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = defaultMaxBodyBytes
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &server{
		src: src, ing: ing, cfg: cfg, cache: newLRUCache(cfg.cacheSize),
		log:      logger,
		slow:     &slowLog{threshold: cfg.slowQuery},
		inflight: newInflightRegistry(),
		shards:   cfg.shards,
	}
	if cfg.maxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.maxConcurrent)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/topk-batch", s.handleTopKBatch)
	mux.HandleFunc("POST /v1/docs", s.handleIngest)
	mux.HandleFunc("GET /v1/docs", s.handleListDocs)
	mux.HandleFunc("DELETE /v1/docs/{name}", s.handleRemove)
	mux.HandleFunc("POST /v1/admin/verify", s.handleVerify)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /debug/queries", s.handleQueries)
	return withRequestLog(logger, mux)
}

// traceFor builds the request's trace: a continuation of the caller's
// trace when a valid W3C traceparent header is present (a router's
// shard.Client stitches its leaves this way), a fresh root otherwise.
// wantTrace (?trace=1) additionally opts the response into the exported
// trace block and propagates the trace onward to remote shards.
func (s *server) traceFor(r *http.Request, wantTrace bool) *qtrace.Trace {
	var tr *qtrace.Trace
	if tid, sid, ok := qtrace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		tr = qtrace.NewWithParent(tid, sid)
	} else {
		tr = qtrace.New()
	}
	tr.SetPropagate(wantTrace)
	if wantTrace {
		s.metrics.tracedQueries.Add(1)
	}
	return tr
}

// observeSlow feeds one finished query to the slow-query log and, when
// it qualifies, the structured log and the slow-query counter.
func (s *server) observeSlow(d time.Duration, e slowEntry) {
	if s.slow.observe(d, e) {
		s.metrics.slowQueries.Add(1)
		s.log.Warn("slow query",
			"reqId", e.ReqID, "traceId", e.TraceID, "endpoint", e.Endpoint,
			"query", e.Query, "k", e.K, "durMs", float64(d.Microseconds())/1000,
			"scanned", e.Scanned, "evaluated", e.Evaluated, "error", e.Error)
	}
}

// parseBracket parses a bracket-notation query in the backend's
// dictionary context when it offers one, a fresh dictionary otherwise.
func (s *server) parseBracket(q string) (*tree.Tree, error) {
	if p, ok := s.src.(queryParser); ok {
		return p.ParseBracket(q)
	}
	return tree.Parse(dict.New(), q)
}

// parseXML is parseBracket for XML queries.
func (s *server) parseXML(r io.Reader) (*tree.Tree, error) {
	if p, ok := s.src.(queryParser); ok {
		return p.ParseXML(r)
	}
	return xmlstream.ParseTree(dict.New(), r)
}

// topkRequest is the body of POST /v1/topk. Exactly one of Query
// (bracket notation) and QueryXML must be set.
type topkRequest struct {
	Query    string `json:"query,omitempty"`
	QueryXML string `json:"queryXml,omitempty"`
	K        int    `json:"k"`
	// Docs restricts the query to the named documents; empty means all.
	Docs []string `json:"docs,omitempty"`
	// Workers overrides the server's per-request worker pool for this
	// request (0 = server default, -1 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Trees includes each matched subtree in bracket notation.
	Trees bool `json:"trees,omitempty"`
	// Exhaustive disables the pq-gram prefilter for this request; the
	// results are identical, only slower. Meant for debugging and
	// verification.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Partial opts into best-effort degradation on a router: if a shard
	// (with all its replicas) is down, the surviving shards' merged
	// results are returned and stats.degraded names what was missing.
	// Default is fail-loud.
	Partial bool `json:"partial,omitempty"`
}

type topkMatch struct {
	Doc   string  `json:"doc"`
	DocID int     `json:"docId"`
	Pos   int     `json:"pos"`
	Dist  float64 `json:"dist"`
	Size  int     `json:"size"`
	Tree  string  `json:"tree,omitempty"`
}

type topkStats struct {
	Scanned int `json:"scanned"`
	Skipped int `json:"skipped"`
	// Candidate-level pruning counters of this run (see corpus.Stats).
	HistSkipped uint64 `json:"histSkipped"`
	TEDAborted  uint64 `json:"tedAborted"`
	Evaluated   uint64 `json:"evaluated"`
	// Dictionary accounting: the frozen corpus dictionary's size and the
	// request-local labels the query overlay held (released with the
	// request; see corpus.Stats).
	BaseDictLabels int `json:"baseDictLabels"`
	OverlayLabels  int `json:"overlayLabels"`
	// Quarantined is the backend's lifetime count of documents its
	// integrity scrub removed from serving (summed across shards on a
	// router); non-zero means results are exact over a reduced corpus.
	Quarantined int  `json:"quarantined,omitempty"`
	Cached      bool `json:"cached"`
	// Fault-tolerance accounting of a router run (see corpus.Stats):
	// retry/hedge totals and, by shard name, who was retried, hedged,
	// skipped by an open breaker, or degraded out of a partial answer.
	Retries        uint64   `json:"retries,omitempty"`
	Hedges         uint64   `json:"hedges,omitempty"`
	Retried        []string `json:"retried,omitempty"`
	Hedged         []string `json:"hedged,omitempty"`
	BreakerSkipped []string `json:"breakerSkipped,omitempty"`
	Degraded       []string `json:"degraded,omitempty"`
}

// statsOf converts a run's corpus.Stats to the response shape.
func statsOf(stats *corpus.Stats) topkStats {
	return topkStats{
		Scanned:        stats.Scanned,
		Skipped:        stats.Skipped,
		HistSkipped:    stats.HistSkipped,
		TEDAborted:     stats.TEDAborted,
		Evaluated:      stats.Evaluated,
		BaseDictLabels: stats.BaseDictLabels,
		OverlayLabels:  stats.OverlayLabels,
		Quarantined:    stats.Quarantined,
		Retries:        stats.Retries,
		Hedges:         stats.Hedges,
		Retried:        stats.Retried,
		Hedged:         stats.Hedged,
		BreakerSkipped: stats.BreakerSkipped,
		Degraded:       stats.Degraded,
	}
}

type topkResponse struct {
	Matches []topkMatch `json:"matches"`
	Stats   topkStats   `json:"stats"`
	// Trace is the request's span tree, present only for ?trace=1
	// requests. A router's trace embeds each leaf's block under shards.
	Trace *qtrace.Wire `json:"trace,omitempty"`
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.topkLatency.observe(time.Since(start)) }()
	var req topkRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, bodyErrStatus(err), "invalid JSON body: %v", err)
		return
	}
	if (req.Query == "") == (req.QueryXML == "") {
		httpError(w, http.StatusBadRequest, "exactly one of query and queryXml is required")
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, "k must be ≥ 1, got %d", req.K)
		return
	}
	if req.K > s.cfg.maxK {
		httpError(w, http.StatusBadRequest, "k %d exceeds the server limit %d", req.K, s.cfg.maxK)
		return
	}

	s.metrics.topkRequests.Add(1)
	// Traced requests bypass the result cache in both directions: a
	// cached answer has no spans to show, and a response carrying a trace
	// block must never be replayed to a request that asked for none.
	wantTrace := r.URL.Query().Get("trace") == "1"
	key := s.cacheKey(&req)
	if !wantTrace {
		if cached, ok := s.cache.get(key); ok {
			var resp topkResponse
			if err := json.Unmarshal(cached, &resp); err == nil {
				s.metrics.cacheHits.Add(1)
				resp.Stats.Cached = true
				writeJSON(w, http.StatusOK, resp)
				return
			}
		}
	}

	tr := s.traceFor(r, wantTrace)
	defer qtrace.Release(tr)
	ctx := qtrace.NewContext(r.Context(), tr)
	// Registered before the semaphore so a query stuck waiting for a slot
	// is visible in /debug/queries (with no active stage yet).
	inflightID := s.inflight.register(&inflightEntry{
		reqID: requestIDFrom(ctx), endpoint: "/v1/topk",
		query: previewOf(&req), k: req.K, start: start, trace: tr,
	})
	defer s.inflight.deregister(inflightID)

	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}

	parseSpan := tr.Begin(qtrace.SpanParse, "")
	var (
		q   *tree.Tree
		err error
	)
	if req.Query != "" {
		q, err = s.parseBracket(req.Query)
	} else {
		q, err = s.parseXML(strings.NewReader(req.QueryXML))
	}
	tr.End(parseSpan)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing query: %v", err)
		return
	}

	var stats corpus.Stats
	opts := []corpus.QueryOption{corpus.WithStats(&stats)}
	if len(req.Docs) > 0 {
		opts = append(opts, corpus.WithDocs(req.Docs...))
	}
	if !req.Trees {
		opts = append(opts, corpus.WithoutTrees())
	}
	if req.Exhaustive {
		opts = append(opts, corpus.WithoutFilter())
	}
	if req.Partial {
		opts = append(opts, corpus.WithPartialResults())
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.workers
	}
	if workers != 0 {
		opts = append(opts, corpus.WithWorkers(workers))
	}
	matches, err := s.src.TopK(ctx, q, req.K, opts...)
	entry := slowEntry{
		Time: start, ReqID: requestIDFrom(ctx), TraceID: tr.TraceID().String(),
		Endpoint: "/v1/topk", Query: previewOf(&req), K: req.K,
		Scanned: stats.Scanned, Skipped: stats.Skipped, Evaluated: stats.Evaluated,
		Retried: stats.Retried, Hedged: stats.Hedged,
		BreakerSkipped: stats.BreakerSkipped, Degraded: stats.Degraded,
	}
	if err != nil {
		entry.Error = err.Error()
	}
	s.observeSlow(time.Since(start), entry)
	if err != nil {
		s.queryError(w, r, err)
		return
	}

	s.metrics.observe(&stats)
	resp := topkResponse{
		Matches: matchesOf(matches),
		Stats:   statsOf(&stats),
	}
	if wantTrace {
		resp.Trace = tr.Export()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Degraded answers are never cached: they are not THE answer for this
	// generation, only the best one available while a shard was down.
	if len(stats.Degraded) == 0 {
		if data, err := json.Marshal(resp); err == nil {
			s.cache.put(key, data)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryError maps a query failure to an HTTP status: cancellation and
// deadline errors (client gone, or the daemon draining for shutdown)
// become 503, backend-side scan failures 500, everything else is the
// caller's mistake (unknown doc selection, malformed query).
func (s *server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		httpError(w, http.StatusServiceUnavailable, "query cancelled: %v", err)
		return
	}
	var scanErr *corpus.ScanError
	if errors.As(err, &scanErr) {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// matchesOf converts corpus matches to the response shape.
func matchesOf(matches []corpus.Match) []topkMatch {
	out := make([]topkMatch, len(matches))
	for i, m := range matches {
		out[i] = topkMatch{
			Doc: m.Doc.Name, DocID: m.Doc.ID, Pos: m.Pos, Dist: m.Dist, Size: m.Size,
		}
		if m.Tree != nil {
			out[i].Tree = m.Tree.String()
		}
	}
	return out
}

// topkBatchRequest is the body of POST /v1/topk-batch: many queries
// answered in one corpus scan (each document is read once for the whole
// batch, and all queries share one request-scoped dictionary overlay).
type topkBatchRequest struct {
	// Queries are the batch's queries in bracket notation.
	Queries []string `json:"queries"`
	K       int      `json:"k"`
	// Docs restricts the batch to the named documents; empty means all.
	Docs []string `json:"docs,omitempty"`
	// Trees includes each matched subtree in bracket notation.
	Trees bool `json:"trees,omitempty"`
	// Exhaustive disables the pq-gram prefilter for this request.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Partial opts into best-effort degradation; see topkRequest.Partial.
	Partial bool `json:"partial,omitempty"`
}

// topkBatchResponse answers a batch: Results[i] ranks queries[i], and the
// stats describe the single shared scan.
type topkBatchResponse struct {
	Results [][]topkMatch `json:"results"`
	Stats   topkStats     `json:"stats"`
	// Trace is the batch's span tree, present only for ?trace=1 requests.
	Trace *qtrace.Wire `json:"trace,omitempty"`
}

func (s *server) handleTopKBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.batchLatency.observe(time.Since(start)) }()
	var req topkBatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, bodyErrStatus(err), "invalid JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "queries must not be empty")
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, "k must be ≥ 1, got %d", req.K)
		return
	}
	if req.K > s.cfg.maxK {
		httpError(w, http.StatusBadRequest, "k %d exceeds the server limit %d", req.K, s.cfg.maxK)
		return
	}
	if len(req.Queries) > s.cfg.maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d queries exceeds the server limit %d", len(req.Queries), s.cfg.maxBatch)
		return
	}

	s.metrics.batchRequests.Add(1)
	s.metrics.batchQueries.Add(uint64(len(req.Queries)))
	// See handleTopK: traced requests bypass the cache in both directions.
	wantTrace := r.URL.Query().Get("trace") == "1"
	key := s.batchCacheKey(&req)
	if !wantTrace {
		if cached, ok := s.cache.get(key); ok {
			var resp topkBatchResponse
			if err := json.Unmarshal(cached, &resp); err == nil {
				s.metrics.cacheHits.Add(1)
				resp.Stats.Cached = true
				writeJSON(w, http.StatusOK, resp)
				return
			}
		}
	}

	tr := s.traceFor(r, wantTrace)
	defer qtrace.Release(tr)
	ctx := qtrace.NewContext(r.Context(), tr)
	inflightID := s.inflight.register(&inflightEntry{
		reqID: requestIDFrom(ctx), endpoint: "/v1/topk-batch",
		query: queryPreview(req.Queries[0]), queries: len(req.Queries),
		k: req.K, start: start, trace: tr,
	})
	defer s.inflight.deregister(inflightID)

	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}

	parseSpan := tr.Begin(qtrace.SpanParse, "")
	queries := make([]*tree.Tree, len(req.Queries))
	for i, qs := range req.Queries {
		q, err := s.parseBracket(qs)
		if err != nil {
			tr.End(parseSpan)
			httpError(w, http.StatusBadRequest, "parsing query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	tr.End(parseSpan)

	var stats corpus.Stats
	opts := []corpus.QueryOption{corpus.WithStats(&stats)}
	if len(req.Docs) > 0 {
		opts = append(opts, corpus.WithDocs(req.Docs...))
	}
	if !req.Trees {
		opts = append(opts, corpus.WithoutTrees())
	}
	if req.Exhaustive {
		opts = append(opts, corpus.WithoutFilter())
	}
	if req.Partial {
		opts = append(opts, corpus.WithPartialResults())
	}
	results, err := s.src.TopKBatch(ctx, queries, req.K, opts...)
	entry := slowEntry{
		Time: start, ReqID: requestIDFrom(ctx), TraceID: tr.TraceID().String(),
		Endpoint: "/v1/topk-batch", Query: queryPreview(req.Queries[0]),
		Queries: len(req.Queries), K: req.K,
		Scanned: stats.Scanned, Skipped: stats.Skipped, Evaluated: stats.Evaluated,
		Retried: stats.Retried, Hedged: stats.Hedged,
		BreakerSkipped: stats.BreakerSkipped, Degraded: stats.Degraded,
	}
	if err != nil {
		entry.Error = err.Error()
	}
	s.observeSlow(time.Since(start), entry)
	if err != nil {
		s.queryError(w, r, err)
		return
	}

	s.metrics.observe(&stats)
	resp := topkBatchResponse{
		Results: make([][]topkMatch, len(results)),
		Stats:   statsOf(&stats),
	}
	for i, ms := range results {
		resp.Results[i] = matchesOf(ms)
	}
	if wantTrace {
		resp.Trace = tr.Export()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// See handleTopK: degraded answers are never cached.
	if len(stats.Degraded) == 0 {
		if data, err := json.Marshal(resp); err == nil {
			s.cache.put(key, data)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchCacheKey identifies a batch result: the corpus generation plus
// every request field that can change the response bytes. Fields are
// length-prefixed like cacheKey's.
func (s *server) batchCacheKey(req *topkBatchRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch\x00g%d\x00k%d\x00t%v\x00e%v\x00p%v\x00q%d",
		s.src.Generation(), req.K, req.Trees, req.Exhaustive, req.Partial, len(req.Queries))
	for _, q := range req.Queries {
		writeLenPrefixed(&sb, q)
	}
	for _, d := range req.Docs {
		writeLenPrefixed(&sb, d)
	}
	return sb.String()
}

// cacheKey identifies a topk result: the corpus generation plus every
// request field that can change the response bytes. Workers is
// deliberately absent — results are identical in all worker modes, so
// keying on it would only fragment the cache. Variable-length fields are
// length-prefixed so values containing separator bytes cannot collide
// with field boundaries.
func (s *server) cacheKey(req *topkRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "g%d\x00k%d\x00t%v\x00e%v\x00p%v", s.src.Generation(), req.K, req.Trees, req.Exhaustive, req.Partial)
	writeLenPrefixed(&sb, req.Query)
	writeLenPrefixed(&sb, req.QueryXML)
	for _, d := range req.Docs {
		writeLenPrefixed(&sb, d)
	}
	return sb.String()
}

// writeLenPrefixed appends one variable-length key field unambiguously.
func writeLenPrefixed(sb *strings.Builder, s string) {
	fmt.Fprintf(sb, "\x00%d:", len(s))
	sb.WriteString(s)
}

// ingestRequest is the JSON body of POST /v1/docs. Raw XML bodies with a
// ?name= query parameter are accepted as well.
type ingestRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		httpError(w, http.StatusNotImplemented,
			"this tasmd serves a shard group and is read-only; ingest into the shard that should own the document")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	var name string
	var xml io.Reader
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req ingestRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.metrics.ingestErrors.Add(1)
			httpError(w, bodyErrStatus(err), "invalid JSON body: %v", err)
			return
		}
		name, xml = req.Name, strings.NewReader(req.XML)
	} else {
		name, xml = r.URL.Query().Get("name"), body
	}
	if name == "" {
		s.metrics.ingestErrors.Add(1)
		httpError(w, http.StatusBadRequest, "document name is required (JSON field \"name\" or ?name=)")
		return
	}
	info, err := s.ing.AddXML(name, xml)
	if err != nil {
		s.metrics.ingestErrors.Add(1)
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			// The XML streamed straight from the capped body; mid-parse
			// overflow surfaces here, wrapped in the parse error.
			status = http.StatusRequestEntityTooLarge
		case strings.Contains(err.Error(), "already exists"):
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	s.metrics.ingests.Add(1)
	writeJSON(w, http.StatusCreated, info)
}

// bodyErrStatus distinguishes a request body that overflowed the
// -max-body-bytes cap (413, the client should not retry as-is) from a
// merely malformed one (400).
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// verifier is the optional backend interface behind POST
// /v1/admin/verify; *corpus.Corpus implements it. Routers do not — each
// leaf scrubs its own disk.
type verifier interface {
	Verify() (corpus.VerifyReport, error)
}

// handleVerify serves POST /v1/admin/verify: an on-demand integrity
// scrub of the backing corpus. Corrupt documents are quarantined and
// reported; the response's quarantinedTotal is the corpus's lifetime
// count (also exported as the tasmd_quarantined_docs gauge).
func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	v, ok := s.src.(verifier)
	if !ok {
		httpError(w, http.StatusNotImplemented,
			"this tasmd serves a shard group with no local files; verify each shard directly")
		return
	}
	rep, err := v.Verify()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	quarantined := rep.Quarantined
	if quarantined == nil {
		quarantined = []string{}
	}
	total := 0
	if q, ok := s.src.(interface{ Quarantined() int }); ok {
		total = q.Quarantined()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checked":          rep.Checked,
		"quarantined":      quarantined,
		"quarantinedTotal": total,
	})
}

// handleRemove serves DELETE /v1/docs/{name}: the manifest entry is
// tombstoned (ids are never reused, so generation-keyed caches stay
// valid) and the backing files garbage-collected best-effort.
func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		httpError(w, http.StatusNotImplemented,
			"this tasmd serves a shard group and is read-only; delete on the shard that owns the document")
		return
	}
	name := r.PathValue("name")
	if err := s.ing.Remove(name); err != nil {
		if errors.Is(err, corpus.ErrNotFound) {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.removes.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

func (s *server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	// The generation is read before the listing: if an ingest lands in
	// between, clients cache the newer listing under the older generation
	// and simply refetch next time — stale-listing-as-current can never
	// happen. shard.Client keys its listing cache on this field.
	gen := s.src.Generation()
	docs := s.src.Docs()
	if docs == nil {
		docs = []corpus.DocInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "docs": docs})
}

// numDocs returns the backend's document count without blocking on
// remote shards when the backend supports it (every corpus/shard backend
// does); routers report a cached, eventually consistent count so a dead
// leaf cannot stall liveness probes or metric scrapes.
func (s *server) numDocs() int {
	if nd, ok := s.src.(interface{ NumDocs() (int, bool) }); ok {
		n, _ := nd.NumDocs()
		return n
	}
	return len(s.src.Docs())
}

// handleSlowlog serves GET /debug/slowlog: the most recent slow queries
// (newest first), the active threshold, and the lifetime count. Entries
// carry the trace id, so a recorded slow query can be re-run with
// ?trace=1 for a stage-level breakdown.
func (s *server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries, total := s.slow.snapshot()
	if entries == nil {
		entries = []slowEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"thresholdMs": float64(s.cfg.slowQuery.Microseconds()) / 1000,
		"total":       total,
		"entries":     entries,
	})
}

// handleQueries serves GET /debug/queries: every query currently
// executing, longest-running first, with the stage (and document or
// shard) its trace is in right now.
func (s *server) handleQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"queries": s.inflight.snapshot()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"docs":       s.numDocs(),
		"generation": s.src.Generation(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// The response is already committed; nothing useful to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
