package main

// Tests for the durability-facing surface of the daemon: the request
// body cap (413), the on-demand integrity scrub endpoint, and the
// quarantine accounting exported through query stats and /metrics.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/corpus/shard"
)

// TestMaxBodyBytes413: bodies over -max-body-bytes are rejected with
// 413 on both the query and ingest paths, and rejected ingests count
// toward tasmd_ingest_errors_total.
func TestMaxBodyBytes413(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{maxBodyBytes: 128})

	big := `{"query":"{a{b}}","k":1,"pad":"` + strings.Repeat("x", 256) + `"}`
	if w := doJSON(t, h, "POST", "/v1/topk", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized topk body: status %d, want 413 (%s)", w.Code, w.Body)
	}
	if w := doJSON(t, h, "POST", "/v1/topk-batch", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body: status %d, want 413 (%s)", w.Code, w.Body)
	}
	w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "big", XML: "<r>" + strings.Repeat("<a>x</a>", 64) + "</r>"})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest body: status %d, want 413 (%s)", w.Code, w.Body)
	}

	// A well-sized request must still work: the cap rejects bodies, not
	// the endpoint.
	ingest(t, h, "ok", "<r><a>x</a></r>")

	body := doJSON(t, h, "GET", "/metrics", nil).Body.String()
	if !strings.Contains(body, "tasmd_ingest_errors_total 1") {
		t.Errorf("metrics missing tasmd_ingest_errors_total 1 after a 413 ingest\n%s", body)
	}
}

// TestIngestErrorMetric: malformed and duplicate ingests advance the
// error counter; successful ones do not.
func TestIngestErrorMetric(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "a", "<r><x>1</x></r>")
	if w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "a", XML: "<r/>"}); w.Code != http.StatusConflict {
		t.Fatalf("duplicate ingest: status %d, want 409", w.Code)
	}
	if w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "b", XML: "<r><unclosed>"}); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed XML ingest: status %d, want 400", w.Code)
	}
	body := doJSON(t, h, "GET", "/metrics", nil).Body.String()
	if !strings.Contains(body, "tasmd_ingest_errors_total 2") {
		t.Errorf("metrics missing tasmd_ingest_errors_total 2\n%s", body)
	}
	if !strings.Contains(body, "tasmd_ingests_total 1") {
		t.Errorf("metrics missing tasmd_ingests_total 1\n%s", body)
	}
}

// TestAdminVerifyQuarantines: POST /v1/admin/verify on a leaf checksums
// every referenced file, quarantines the corrupt document, and the loss
// is visible in query stats and the tasmd_quarantined_docs gauge.
func TestAdminVerifyQuarantines(t *testing.T) {
	h, c := newTestServer(t, serverConfig{})
	ingest(t, h, "good", "<r><a><b>keep</b></a></r>")
	ingest(t, h, "bad", "<r><a><b>doomed</b></a></r>")

	// Flip one byte in the middle of the second document's store file.
	store := filepath.Join(c.Dir(), "docs", "2.store")
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(store, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w := doJSON(t, h, "POST", "/v1/admin/verify", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("admin verify: status %d: %s", w.Code, w.Body)
	}
	var rep struct {
		Checked          int      `json:"checked"`
		Quarantined      []string `json:"quarantined"`
		QuarantinedTotal int      `json:"quarantinedTotal"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("%v in %s", err, w.Body)
	}
	if rep.Checked != 2 || len(rep.Quarantined) != 1 || rep.Quarantined[0] != "bad" || rep.QuarantinedTotal != 1 {
		t.Fatalf("verify report %+v, want checked=2 quarantined=[bad] total=1", rep)
	}

	// The survivor still answers, and the response accounts for the loss.
	resp := topk(t, h, topkRequest{Query: "{a{b{keep}}}", K: 2})
	if len(resp.Matches) == 0 || resp.Matches[0].Doc != "good" {
		t.Fatalf("post-quarantine topk: %+v", resp.Matches)
	}
	if resp.Stats.Quarantined != 1 {
		t.Fatalf("stats.quarantined = %d, want 1", resp.Stats.Quarantined)
	}
	body := doJSON(t, h, "GET", "/metrics", nil).Body.String()
	if !strings.Contains(body, "tasmd_quarantined_docs 1") {
		t.Errorf("metrics missing tasmd_quarantined_docs 1\n%s", body)
	}

	// A second scrub over the now-clean corpus quarantines nothing more.
	w = doJSON(t, h, "POST", "/v1/admin/verify", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("second verify: status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || len(rep.Quarantined) != 0 || rep.QuarantinedTotal != 1 {
		t.Fatalf("second verify report %+v, want checked=1 quarantined=[] total=1", rep)
	}
}

// TestAdminVerifyRouterIs501: a router has no local files to scrub;
// each leaf owns its own disk.
func TestAdminVerifyRouterIs501(t *testing.T) {
	cl, _ := newLeaf(t, map[string]string{"d": "<r><x>1</x></r>"})
	router := newServer(shard.NewGroup(cl), nil, serverConfig{})
	w := doJSON(t, router, "POST", "/v1/admin/verify", nil)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("router admin verify: status %d, want 501 (%s)", w.Code, w.Body)
	}
}
