package main

import (
	"container/list"
	"sync"
)

// lruCache is a bounded LRU of marshaled query results. Keys embed the
// corpus generation, so entries from before an ingest can never be
// served afterwards — they simply stop being looked up and age out.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key   string
	value []byte
}

// newLRUCache returns a cache holding up to cap entries; cap ≤ 0 disables
// caching (every lookup misses, every store is dropped).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached bytes for key and whether they were present.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// put stores value under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, value []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, value: value})
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
