package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func topkBatch(t *testing.T, h http.Handler, req topkBatchRequest) topkBatchResponse {
	t.Helper()
	w := doJSON(t, h, "POST", "/v1/topk-batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("topk-batch: status %d: %s", w.Code, w.Body)
	}
	var resp topkBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("topk-batch: %v in %s", err, w.Body)
	}
	return resp
}

// TestBatchEndpoint: the batch endpoint returns, per query, exactly what
// the single-query endpoint returns, and the whole batch is answered by
// one scan.
func TestBatchEndpoint(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8})
	ingest(t, h, "a", "<dblp><article><author>smith</author><title>trees</title></article></dblp>")
	ingest(t, h, "b", "<dblp><book><title>graphs</title><author>jones</author></book></dblp>")

	queries := []string{
		"{article{author{smith}}}",
		"{book{title{graphs}}}",
		"{inproceedings{author{nobody-has-this-label}}}",
	}
	resp := topkBatch(t, h, topkBatchRequest{Queries: queries, K: 3, Trees: true})
	if len(resp.Results) != len(queries) {
		t.Fatalf("batch returned %d result sets for %d queries", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		single := topk(t, h, topkRequest{Query: q, K: 3, Trees: true})
		sj, _ := json.Marshal(single.Matches)
		bj, _ := json.Marshal(resp.Results[i])
		if string(sj) != string(bj) {
			t.Errorf("query %d: batch != single\n %s\n %s", i, bj, sj)
		}
	}
	// The third query's labels are unknown to the corpus: they must show
	// up as overlay-local labels, not in the base dictionary.
	if resp.Stats.OverlayLabels == 0 {
		t.Error("batch with never-seen labels reported OverlayLabels = 0")
	}
	if resp.Stats.BaseDictLabels == 0 {
		t.Error("BaseDictLabels = 0 on a corpus with two documents")
	}

	// Identical batch: served from the generation-keyed cache.
	again := topkBatch(t, h, topkBatchRequest{Queries: queries, K: 3, Trees: true})
	if !again.Stats.Cached {
		t.Error("identical batch was not served from the cache")
	}
}

func TestBatchBadInput(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "a", "<r><c>x</c></r>")
	for _, tc := range []struct {
		name string
		req  any
		want int
	}{
		{"no queries", topkBatchRequest{K: 2}, http.StatusBadRequest},
		{"k=0", topkBatchRequest{Queries: []string{"{a}"}}, http.StatusBadRequest},
		{"bad query", topkBatchRequest{Queries: []string{"{unclosed"}, K: 1}, http.StatusBadRequest},
		{"unknown doc", topkBatchRequest{Queries: []string{"{a}"}, K: 1, Docs: []string{"nope"}}, http.StatusBadRequest},
	} {
		w := doJSON(t, h, "POST", "/v1/topk-batch", tc.req)
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body)
		}
	}
}

// TestLatencyHistogramExported: /metrics carries the per-request latency
// histograms with cumulative buckets, sum and count.
func TestLatencyHistogramExported(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "a", "<r><c>x</c></r>")
	topk(t, h, topkRequest{Query: "{r{c}}", K: 1})
	topkBatch(t, h, topkBatchRequest{Queries: []string{"{r{c}}", "{c{x}}"}, K: 1})

	w := doJSON(t, h, "GET", "/metrics", nil)
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE tasmd_topk_latency_seconds histogram",
		`tasmd_topk_latency_seconds_bucket{le="0.001"}`,
		`tasmd_topk_latency_seconds_bucket{le="+Inf"} 1`,
		"tasmd_topk_latency_seconds_count 1",
		"tasmd_topk_latency_seconds_sum ",
		"# TYPE tasmd_topk_batch_latency_seconds histogram",
		`tasmd_topk_batch_latency_seconds_bucket{le="+Inf"} 1`,
		"tasmd_topk_batch_latency_seconds_count 1",
		"tasmd_topk_batch_requests_total 1",
		"tasmd_topk_batch_queries_total 2",
		"tasmd_dict_base_labels ",
		"tasmd_overlay_labels_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Bucket counts are cumulative: the +Inf bucket equals the count.
	if !strings.Contains(body, `tasmd_topk_latency_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("cumulative +Inf bucket missing:\n%s", body)
	}
}
