// Package keyword implements approximate XML keyword search on top of
// TASM — the future-work direction sketched in Section VIII of the paper:
// "the problem of approximate keyword search, in which one is interested
// in small subtrees that match a set of keywords, can be accommodated in
// the formulation of the tree edit distance."
//
// The accommodation works as follows. A set of keywords is turned into a
// star-shaped query: an inexpensive wildcard root with one child per
// keyword. Matching that query against a document subtree under a
// per-label cost model that makes the synthetic wildcard node nearly free
// to rename yields a score that (a) charges for every keyword the subtree
// is missing (its leaf must be inserted into the mapping as a deletion
// from the query), (b) charges for the extra content of large subtrees
// (insertions), and therefore (c) prefers exactly the small subtrees that
// cover many keywords — the classic keyword-search desiderata of content
// coverage and conciseness, expressed in one established metric instead of
// an ad-hoc score combination.
//
// Because the scoring is plain TASM, all machinery of the paper applies
// unchanged: the τ bound caps the subtree size that can reach the top-k,
// the prefix ring buffer prunes in one streaming pass, and memory is
// independent of the document size.
package keyword

import (
	"fmt"
	"sort"

	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// WildcardLabel is the label of the synthetic root of keyword queries.
// Renaming it to any document label is almost free, so the root aligns
// with whatever element encloses the keywords.
const WildcardLabel = "\x00*"

// wildcardCost is the node cost of the wildcard root. Definition 4
// requires cst ≥ 1; the rename cost against a unit-cost document node is
// (1+1)/2 = 1, so the wildcard is charged like one ordinary rename — the
// minimum the cost model admits.
const wildcardCost = 1

// DefaultKeywordWeight balances coverage against conciseness: missing a
// keyword costs 8 while each extra content node in an answer costs 1, so
// an answer may carry up to 7 nodes of surrounding context per keyword it
// covers before a smaller partial answer overtakes it.
const DefaultKeywordWeight = 8

// Option configures a Search.
type Option func(*Search)

// WithK sets the number of results (default 10).
func WithK(k int) Option { return func(s *Search) { s.k = k } }

// WithWorkers enables parallel matching with the given pool size.
func WithWorkers(n int) Option { return func(s *Search) { s.workers = n } }

// WithKeywordWeight sets the node cost of keyword leaves (≥ 1). Higher
// weights favour coverage (answers containing all keywords even if large);
// weight 1 favours conciseness to the point that single-keyword leaves win.
// This is the content-vs-structure dial of the XML keyword search
// literature, expressed as a cost model instead of a score combination.
func WithKeywordWeight(w float64) Option { return func(s *Search) { s.weight = w } }

// Search is a prepared keyword query.
type Search struct {
	dict     dict.Dict
	keywords []string
	query    *tree.Tree
	k        int
	workers  int
	weight   float64
}

// Result is one ranked answer subtree.
type Result struct {
	// Score is the tree edit distance between the keyword query and the
	// subtree; lower is better. A subtree containing all keywords and
	// nothing else scores 0 or 1 (the wildcard rename).
	Score float64
	// Missing lists the keywords that do not occur in the subtree.
	Missing []string
	// Pos is the 1-based postorder position of the subtree root.
	Pos int
	// Tree is the matched subtree.
	Tree *tree.Tree
}

// New prepares a keyword search over documents interned in d — pass
// Matcher.Dict() of the tasm.Matcher that parsed (or will stream) the
// documents. At least one keyword is required.
func New(d dict.Dict, keywords []string, opts ...Option) (*Search, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("keyword: at least one keyword required")
	}
	root := tree.NewNode(WildcardLabel)
	for _, kw := range keywords {
		if kw == "" {
			return nil, fmt.Errorf("keyword: empty keyword")
		}
		root.AddChild(tree.NewNode(kw))
	}
	s := &Search{
		dict:     d,
		keywords: append([]string(nil), keywords...),
		query:    tree.FromNode(d, root),
		k:        10,
		weight:   DefaultKeywordWeight,
	}
	for _, o := range opts {
		o(s)
	}
	if s.k < 1 {
		return nil, fmt.Errorf("keyword: k must be ≥ 1, got %d", s.k)
	}
	if s.weight < 1 {
		return nil, fmt.Errorf("keyword: keyword weight must be ≥ 1, got %g", s.weight)
	}
	return s, nil
}

// Query returns the star query the keywords were compiled into.
func (s *Search) Query() *tree.Tree { return s.query }

// model returns the cost model: the wildcard root at the Definition 4
// minimum (its rename is as cheap as the model admits), keyword leaves at
// the configured weight (missing one is expensive), everything else unit.
func (s *Search) model() (cost.Model, error) {
	table := map[string]float64{WildcardLabel: wildcardCost}
	for _, kw := range s.keywords {
		table[kw] = s.weight
	}
	return cost.NewPerLabel(table, 1)
}

// Run executes the search over a streaming document.
func (s *Search) Run(doc postorder.Queue) ([]Result, error) {
	model, err := s.model()
	if err != nil {
		return nil, err
	}
	opts := core.Options{Model: model}
	var matches []core.Match
	if s.workers > 1 {
		matches, err = core.PostorderParallel(s.query, doc, s.k, s.workers, opts)
	} else {
		matches, err = core.PostorderStream(s.query, doc, s.k, opts)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(matches))
	for i, m := range matches {
		out[i] = Result{
			Score:   m.Dist,
			Pos:     m.Pos,
			Tree:    m.Tree,
			Missing: s.missing(m.Tree),
		}
	}
	return out, nil
}

// RunTree executes the search over a memory-resident document.
func (s *Search) RunTree(doc *tree.Tree) ([]Result, error) {
	return s.Run(postorder.FromTree(doc))
}

// missing returns the keywords that have no exactly labeled node in t.
func (s *Search) missing(t *tree.Tree) []string {
	if t == nil {
		return nil
	}
	present := map[string]bool{}
	for i := 0; i < t.Size(); i++ {
		present[t.Label(i)] = true
	}
	var out []string
	for _, kw := range s.keywords {
		if !present[kw] {
			out = append(out, kw)
		}
	}
	sort.Strings(out)
	return out
}
