package keyword

import (
	"strings"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// library is a document where the keywords {Knuth, 1968} co-occur in one
// small subtree and are scattered elsewhere.
func library(t testing.TB, d dict.Dict) *tree.Tree {
	t.Helper()
	return tree.MustParse(d,
		"{library"+
			"{book{author{Knuth}}{title{TAOCP}}{year{1968}}}"+
			"{book{author{Lovelace}}{title{Notes}}{year{1843}}}"+
			"{shelf{box{Knuth}}{crate{misc{other{deep{1968}}}}}}"+
			"{journal{title{CACM}}{year{1968}}}}")
}

func TestCoOccurrenceWins(t *testing.T) {
	d := dict.New()
	doc := library(t, d)
	s, err := New(d, []string{"Knuth", "1968"}, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	best := res[0]
	if len(best.Missing) != 0 {
		t.Errorf("best result misses %v", best.Missing)
	}
	// The best answer must be the small book subtree containing both
	// keywords, not the scattered shelf or the whole library.
	if !strings.Contains(best.Tree.String(), "Knuth") || !strings.Contains(best.Tree.String(), "1968") {
		t.Errorf("best result %s does not cover the keywords", best.Tree)
	}
	if best.Tree.Size() > 10 {
		t.Errorf("best result has %d nodes; keyword search must prefer concise subtrees", best.Tree.Size())
	}
	// Results must be sorted by score.
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Errorf("results not sorted at %d", i)
		}
	}
}

func TestMissingKeywordsReported(t *testing.T) {
	d := dict.New()
	doc := tree.MustParse(d, "{a{x{Knuth}}{y{other}}}")
	s, err := New(d, []string{"Knuth", "absent"}, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if len(res[0].Missing) != 1 || res[0].Missing[0] != "absent" {
		t.Errorf("Missing = %v, want [absent]", res[0].Missing)
	}
	// A missing keyword costs at least its deletion: score ≥ 1.
	if res[0].Score < 1 {
		t.Errorf("score %g too low for a result missing a keyword", res[0].Score)
	}
}

func TestPerfectCoverScoresLow(t *testing.T) {
	d := dict.New()
	// The subtree {z{k1}{k2}} is exactly the query shape up to the root
	// label: score = wildcard rename = 1.
	doc := tree.MustParse(d, "{root{z{k1}{k2}}{noise{n1}{n2}{n3}}}")
	s, err := New(d, []string{"k1", "k2"}, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score != 1 {
		t.Errorf("score = %g, want 1 (wildcard rename only)", res[0].Score)
	}
	if res[0].Tree.String() != "{z{k1}{k2}}" {
		t.Errorf("best = %s", res[0].Tree)
	}
}

func TestParallelAgrees(t *testing.T) {
	d := dict.New()
	doc := library(t, d)
	seq, err := New(d, []string{"Knuth", "1968"}, WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(d, []string{"Knuth", "1968"}, WithK(4), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Run(postorder.FromTree(doc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(postorder.FromTree(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Errorf("rank %d: %g vs %g", i, a[i].Score, b[i].Score)
		}
	}
}

func TestValidation(t *testing.T) {
	d := dict.New()
	if _, err := New(d, nil); err == nil {
		t.Error("empty keyword set accepted")
	}
	if _, err := New(d, []string{""}); err == nil {
		t.Error("empty keyword accepted")
	}
	if _, err := New(d, []string{"x"}, WithK(0)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestQueryShape(t *testing.T) {
	d := dict.New()
	s, err := New(d, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	q := s.Query()
	if q.Size() != 4 {
		t.Errorf("query size = %d, want 4", q.Size())
	}
	if q.Label(q.Root()) != WildcardLabel {
		t.Errorf("root label = %q", q.Label(q.Root()))
	}
	if q.Fanout(q.Root()) != 3 {
		t.Errorf("root fanout = %d, want 3", q.Fanout(q.Root()))
	}
}
