package keyword_test

import (
	"fmt"
	"strings"

	"tasm"
	"tasm/keyword"
)

func Example() {
	m := tasm.New()
	doc, _ := m.ParseXML(strings.NewReader(
		`<library>
		   <book><author>Knuth</author><year>1968</year></book>
		   <book><author>Codd</author><year>1970</year></book>
		 </library>`))

	s, _ := keyword.New(m.Dict(), []string{"Knuth", "1968"}, keyword.WithK(1))
	results, _ := s.RunTree(doc)

	best := results[0]
	// Score 3 = wildcard rename (1) + two cheap context nodes absorbed
	// (author, year); both keywords covered.
	fmt.Printf("score %.0f, missing %d keywords: %s\n", best.Score, len(best.Missing), best.Tree)
	// Output:
	// score 3, missing 0 keywords: {book{author{Knuth}}{year{1968}}}
}
