package tasm

// Benchmarks regenerating the measurements behind every figure of the
// paper's evaluation (Section VII), one benchmark family per figure, plus
// micro-benchmarks of the core machinery. The figure benchmarks use
// moderate document scales so `go test -bench=.` completes in minutes;
// cmd/tasmbench runs the full sweeps and prints the paper-style tables.
//
//	BenchmarkFig9a*  runtime vs document size   (dyn vs pos)
//	BenchmarkFig9b*  runtime vs query size      (dyn vs pos)
//	BenchmarkFig9c*  runtime vs k               (dyn vs pos)
//	BenchmarkFig10*  allocations vs doc size    (B/op column ≙ memory)
//	BenchmarkFig11*  instrumented pruning profile (PSD/DBLP shapes)
//	BenchmarkFig12*  cumulative-size bookkeeping

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/experiments"
	"tasm/internal/postorder"
	"tasm/internal/pqgram"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
	"tasm/internal/xmlstream"
)

// fixture caches one generated document per (dataset, scale) across
// benchmarks in a run.
type fixture struct {
	doc   *tree.Tree
	dict  dict.Dict
	items []postorder.Item
}

var (
	fixMu  sync.Mutex
	fixMap = map[string]*fixture{}
)

func xmarkFixture(b *testing.B, scale int) *fixture {
	b.Helper()
	return getFixture(b, fmt.Sprintf("xmark%d", scale), func(d dict.Dict) *datagen.Dataset { return datagen.XMark(scale) })
}

func dblpFixture(b *testing.B, records int) *fixture {
	b.Helper()
	return getFixture(b, fmt.Sprintf("dblp%d", records), func(d dict.Dict) *datagen.Dataset { return datagen.DBLP(records) })
}

func psdFixture(b *testing.B, entries int) *fixture {
	b.Helper()
	return getFixture(b, fmt.Sprintf("psd%d", entries), func(d dict.Dict) *datagen.Dataset { return datagen.PSD(entries) })
}

func getFixture(b *testing.B, key string, mk func(dict.Dict) *datagen.Dataset) *fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixMap[key]; ok {
		return f
	}
	d := dict.New()
	doc, err := mk(d).Tree(d, 1)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{doc: doc, dict: d, items: postorder.Items(doc)}
	fixMap[key] = f
	return f
}

// query picks a deterministic |Q|-node query from the fixture document.
func (f *fixture) query(b *testing.B, size int) *tree.Tree {
	b.Helper()
	q, err := datagen.QueryFromDocument(f.doc, rand.New(rand.NewSource(int64(size))), size)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func benchDyn(b *testing.B, f *fixture, qsize, k int) {
	q := f.query(b, qsize)
	opts := core.Options{NoTrees: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Dynamic(q, f.doc, k, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPos(b *testing.B, f *fixture, qsize, k int) {
	q := f.query(b, qsize)
	opts := core.Options{NoTrees: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queue := postorder.NewSliceQueue(f.items)
		if _, err := core.PostorderStream(q, queue, k, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9a: runtime vs document size (k=5) ---

func BenchmarkFig9a(b *testing.B) {
	for _, scale := range []int{1, 2, 4, 8} {
		for _, qsize := range []int{4, 8, 64} {
			f := xmarkFixture(b, scale)
			b.Run(fmt.Sprintf("scale=%d/Q=%d/dyn", scale, qsize), func(b *testing.B) { benchDyn(b, f, qsize, 5) })
			b.Run(fmt.Sprintf("scale=%d/Q=%d/pos", scale, qsize), func(b *testing.B) { benchPos(b, f, qsize, 5) })
		}
	}
}

// --- Figure 9b: runtime vs query size (k=5) ---

func BenchmarkFig9b(b *testing.B) {
	for _, qsize := range []int{4, 8, 16, 32, 64} {
		for _, scale := range []int{1, 4} {
			f := xmarkFixture(b, scale)
			b.Run(fmt.Sprintf("Q=%d/scale=%d/dyn", qsize, scale), func(b *testing.B) { benchDyn(b, f, qsize, 5) })
			b.Run(fmt.Sprintf("Q=%d/scale=%d/pos", qsize, scale), func(b *testing.B) { benchPos(b, f, qsize, 5) })
		}
	}
}

// --- Figure 9c: runtime vs k (|Q|=16) ---

func BenchmarkFig9c(b *testing.B) {
	for _, k := range []int{1, 10, 100, 1000, 10000} {
		f := xmarkFixture(b, 2)
		b.Run(fmt.Sprintf("k=%d/dyn", k), func(b *testing.B) { benchDyn(b, f, 16, k) })
		b.Run(fmt.Sprintf("k=%d/pos", k), func(b *testing.B) { benchPos(b, f, 16, k) })
	}
}

// --- Figure 10: memory vs document size (read the B/op column) ---

func BenchmarkFig10(b *testing.B) {
	for _, scale := range []int{1, 2, 4, 8} {
		for _, qsize := range []int{4, 16} {
			f := xmarkFixture(b, scale)
			// B/op for dyn is dominated by the O(m·n) matrices, growing
			// with the document. B/op for pos counts cumulative candidate
			// churn (reclaimed as it goes); its *peak* footprint is flat —
			// cmd/tasmbench -fig 10 measures that directly.
			b.Run(fmt.Sprintf("scale=%d/Q=%d/dyn", scale, qsize), func(b *testing.B) {
				q := f.query(b, qsize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					comp := ted.NewComputer(cost.Unit{}, q)
					if got := comp.Distance(f.doc); got < 0 {
						b.Fatal("negative distance")
					}
				}
			})
			b.Run(fmt.Sprintf("scale=%d/Q=%d/pos", scale, qsize), func(b *testing.B) { benchPos(b, f, qsize, 5) })
		}
	}
}

// --- Figure 11: TED-computation profiles on PSD- and DBLP-shaped data ---

type benchProbe struct {
	relevant, candidates, pruned int
	maxRelevant                  int
}

func (p *benchProbe) RelevantSubtree(size int) {
	p.relevant++
	if size > p.maxRelevant {
		p.maxRelevant = size
	}
}
func (p *benchProbe) Candidate(size int) { p.candidates++ }
func (p *benchProbe) Pruned(size int)    { p.pruned++ }

func BenchmarkFig11(b *testing.B) {
	run := func(b *testing.B, f *fixture, algo string) {
		q := f.query(b, 4)
		b.ReportAllocs()
		b.ResetTimer()
		var probe benchProbe
		for i := 0; i < b.N; i++ {
			probe = benchProbe{}
			opts := core.Options{NoTrees: true, Probe: &probe}
			var err error
			if algo == "dyn" {
				_, err = core.Dynamic(q, f.doc, 1, opts)
			} else {
				_, err = core.PostorderStream(q, postorder.NewSliceQueue(f.items), 1, opts)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(probe.relevant), "relevant-subtrees")
		b.ReportMetric(float64(probe.maxRelevant), "max-relevant-size")
	}
	psd := psdFixture(b, 1500)
	dblp := dblpFixture(b, 10000)
	b.Run("psd/dyn", func(b *testing.B) { run(b, psd, "dyn") })
	b.Run("psd/pos", func(b *testing.B) { run(b, psd, "pos") })
	b.Run("dblp/dyn", func(b *testing.B) { run(b, dblp, "dyn") })
	b.Run("dblp/pos", func(b *testing.B) { run(b, dblp, "pos") })
}

// --- Figure 12: cumulative subtree size difference ---

func BenchmarkFig12(b *testing.B) {
	cfg := experiments.Quick()
	b.ReportAllocs()
	b.ResetTimer()
	var lastDiff float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12(discard{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastDiff = float64(pts[len(pts)-1].Diff)
	}
	b.ReportMetric(lastDiff, "final-css-diff")
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- Ablation: how much does the τ′ intermediate bound buy? ---

func BenchmarkAblationTauPrime(b *testing.B) {
	f := xmarkFixture(b, 2)
	q := f.query(b, 16)
	for _, disable := range []bool{false, true} {
		name := "with-tau-prime"
		if disable {
			name = "without-tau-prime"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{NoTrees: true, DisableIntermediateBound: disable}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderStream(q, postorder.NewSliceQueue(f.items), 1, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Extension: parallel TASM-postorder scaling ---

func BenchmarkParallel(b *testing.B) {
	f := xmarkFixture(b, 4)
	q := f.query(b, 32)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.Options{NoTrees: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderParallel(q, postorder.NewSliceQueue(f.items), 5, workers, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatch compares one batched scan of 8 queries against 8
// individual scans over an XML source: the batch amortizes the repeated
// document parsing and pruning passes (over an already-decoded in-memory
// queue the two are nearly equal — the savings are the per-pass costs).
func BenchmarkBatch(b *testing.B) {
	f := xmarkFixture(b, 2)
	var sb strings.Builder
	if err := xmlstream.WriteTree(&sb, f.doc); err != nil {
		b.Fatal(err)
	}
	xml := sb.String()
	queries := make([]*tree.Tree, 8)
	for i := range queries {
		queries[i] = f.query(b, 8+i)
	}
	opts := core.Options{NoTrees: true}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			queue := xmlstream.NewReader(f.dict, strings.NewReader(xml))
			if _, err := core.PostorderBatch(queries, queue, 5, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("individual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				queue := xmlstream.NewReader(f.dict, strings.NewReader(xml))
				if _, err := core.PostorderStream(q, queue, 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Micro-benchmarks of the building blocks ---

func BenchmarkTEDDistance(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := dict.New()
			rng := rand.New(rand.NewSource(1))
			q := tree.Random(d, rng, tree.RandomConfig{Nodes: 16, MaxFanout: 4, Labels: 8})
			t := tree.Random(d, rng, tree.RandomConfig{Nodes: n, MaxFanout: 4, Labels: 8})
			comp := ted.NewComputer(cost.Unit{}, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				comp.Distance(t)
			}
		})
	}
}

func BenchmarkRingBufferScan(b *testing.B) {
	f := dblpFixture(b, 20000)
	b.ReportAllocs()
	b.SetBytes(int64(len(f.items)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := prb.New(postorder.NewSliceQueue(f.items), 50)
		n := 0
		for {
			ok, err := buf.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkApproxVsExact contrasts the pq-gram approximation ([21], the
// related-work filter family of Section III) with the exact Zhang–Shasha
// distance on equal-sized tree pairs: the approximation is one to two
// orders of magnitude faster per pair but offers no ranking guarantee.
func BenchmarkApproxVsExact(b *testing.B) {
	d := dict.New()
	rng := rand.New(rand.NewSource(9))
	a := tree.Random(d, rng, tree.RandomConfig{Nodes: 64, MaxFanout: 4, Labels: 10})
	c := tree.Random(d, rng, tree.RandomConfig{Nodes: 64, MaxFanout: 4, Labels: 10})
	b.Run("pqgram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pa, err := pqgram.New(a, 2, 3)
			if err != nil {
				b.Fatal(err)
			}
			pc, err := pqgram.New(c, 2, 3)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pqgram.Distance(pa, pc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zhangshasha", func(b *testing.B) {
		comp := ted.NewComputer(cost.Unit{}, a)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			comp.Distance(c)
		}
	})
}

func BenchmarkRankingHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dists := make([]float64, 1<<16)
	for i := range dists {
		dists[i] = float64(rng.Intn(1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ranking.New(20)
		for j, d := range dists {
			h.Push(ranking.Entry{Dist: d, Pos: j + 1})
		}
	}
}

func BenchmarkXMLStreamParse(b *testing.B) {
	// Serialize a 2000-record bibliography once, then measure streaming
	// parse throughput (bytes of XML per second).
	f := dblpFixture(b, 2000)
	var sb strings.Builder
	if err := xmlstream.WriteTree(&sb, f.doc); err != nil {
		b.Fatal(err)
	}
	data := sb.String()
	m := New()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := m.XMLQueue(strings.NewReader(data))
		for {
			if _, err := q.Next(); err != nil {
				break
			}
		}
	}
}
