#!/usr/bin/env bash
# Two-process tasmd smoke test: a router (-shards) scatter-gathering over
# a leaf (-dir) must answer a top-k query ingested into the leaf. Run
# from the repository root; exits non-zero on any failure.
set -euo pipefail

LEAF_PORT="${LEAF_PORT:-18421}"
ROUTER_PORT="${ROUTER_PORT:-18422}"
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_healthy() { # url
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  return 1
}

go build -o "$WORKDIR/tasmd" ./cmd/tasmd

"$WORKDIR/tasmd" -dir "$WORKDIR/leaf-corpus" -addr "127.0.0.1:$LEAF_PORT" &
LEAF_PID=$!
PIDS+=($LEAF_PID)
wait_healthy "http://127.0.0.1:$LEAF_PORT"

# Ingest into the leaf.
curl -sf -X POST "http://127.0.0.1:$LEAF_PORT/v1/docs" \
  -H 'Content-Type: application/json' \
  -d '{"name":"smoke","xml":"<r><rec><a>1</a><b>2</b></rec><rec><a>1</a></rec></r>"}' >/dev/null

# The router scatter-gathers over the leaf (second process, second tier).
# -slow-query 1ns records every query in /debug/slowlog for the check below.
"$WORKDIR/tasmd" -shards "http://127.0.0.1:$LEAF_PORT" -addr "127.0.0.1:$ROUTER_PORT" -slow-query 1ns &
PIDS+=($!)
wait_healthy "http://127.0.0.1:$ROUTER_PORT"

# Query through the router; the exact subtree lives in the leaf.
RESP="$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/topk" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":2,"trees":true}')"
echo "router response: $RESP"

python3 - "$RESP" <<'EOF'
import json, sys
resp = json.loads(sys.argv[1])
matches = resp["matches"]
assert len(matches) == 2, f"want 2 matches, got {len(matches)}"
assert matches[0]["doc"] == "smoke", matches[0]
assert matches[0]["dist"] == 0, "exact subtree must rank first with distance 0"
assert matches[0]["tree"], "trees=true must return the matched subtree"
EOF

# A traced query through both tiers: the router's trace block must embed
# the leaf's, stitched by the propagated W3C trace context — the leaf
# block carries the router's trace id and names the router's root span as
# its parent, and the leaf's own scan spans are visible from here.
TRACED="$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/topk?trace=1" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":1}')"

python3 - "$TRACED" <<'EOF'
import json, sys
resp = json.loads(sys.argv[1])
trace = resp.get("trace")
assert trace, "?trace=1 response carries no trace block"
router_spans = {s["name"] for s in trace["spans"]}
assert "shard" in router_spans, f"router trace has no shard span: {router_spans}"
shards = trace.get("shards") or []
assert len(shards) == 1, f"router trace embeds {len(shards)} leaf blocks, want 1"
leaf = shards[0]
assert leaf["traceId"] == trace["traceId"], \
    f"leaf trace id {leaf['traceId']} != router trace id {trace['traceId']} (stitching broken)"
assert leaf["parentId"] == trace["spanId"], \
    f"leaf parent id {leaf['parentId']} != router span id {trace['spanId']}"
leaf_spans = {s["name"] for s in leaf["spans"]}
assert "scan" in leaf_spans, f"leaf trace has no scan span: {leaf_spans}"
EOF

# The router's /metrics exposition: runtime gauges and the shard-labelled
# router telemetry must be present, and the latency histogram's _count
# must equal its +Inf bucket (the scrape-tear regression check).
METRICS="$(curl -sf "http://127.0.0.1:$ROUTER_PORT/metrics")"
echo "$METRICS" | grep -q '^tasmd_process_start_time_seconds ' \
  || { echo "FAIL: router /metrics lacks tasmd_process_start_time_seconds" >&2; exit 1; }
echo "$METRICS" | grep -q '^tasmd_shard_latency_seconds_bucket{shard="' \
  || { echo "FAIL: router /metrics lacks per-shard latency series" >&2; exit 1; }
INF="$(echo "$METRICS" | sed -n 's/^tasmd_topk_latency_seconds_bucket{le="+Inf"} //p')"
COUNT="$(echo "$METRICS" | sed -n 's/^tasmd_topk_latency_seconds_count //p')"
[ -n "$INF" ] && [ "$INF" = "$COUNT" ] \
  || { echo "FAIL: histogram _count ($COUNT) != +Inf bucket ($INF)" >&2; exit 1; }

# Every query was slow under the 1ns threshold: the slow-query log must
# have entries.
SLOWLOG="$(curl -sf "http://127.0.0.1:$ROUTER_PORT/debug/slowlog")"
python3 - "$SLOWLOG" <<'EOF'
import json, sys
log = json.loads(sys.argv[1])
assert log["total"] >= 1, f"slow-query log empty under a 1ns threshold: {log}"
assert log["entries"][0]["endpoint"] == "/v1/topk", log["entries"][0]
assert log["entries"][0]["traceId"], "slow entry lacks a trace id"
EOF

# --- Replicated shard failover -------------------------------------------
# A second leaf holding the SAME document (same name, same content, same
# ingest order) acts as a replica; a second router serves the pair as ONE
# shard via the | syntax, with the doomed replica as primary. SIGKILLing
# the primary must not take the router down: the query fails over to the
# surviving replica and still answers exactly.
REPLICA_PORT="${REPLICA_PORT:-18423}"
REPL_ROUTER_PORT="${REPL_ROUTER_PORT:-18424}"

"$WORKDIR/tasmd" -dir "$WORKDIR/replica-corpus" -addr "127.0.0.1:$REPLICA_PORT" &
DOOMED_PID=$!
PIDS+=($DOOMED_PID)
wait_healthy "http://127.0.0.1:$REPLICA_PORT"
curl -sf -X POST "http://127.0.0.1:$REPLICA_PORT/v1/docs" \
  -H 'Content-Type: application/json' \
  -d '{"name":"smoke","xml":"<r><rec><a>1</a><b>2</b></rec><rec><a>1</a></rec></r>"}' >/dev/null

# -cache 0: the post-SIGKILL query must exercise the failover path, not
# be answered from the result cache.
"$WORKDIR/tasmd" -shards "http://127.0.0.1:$REPLICA_PORT|http://127.0.0.1:$LEAF_PORT" \
  -addr "127.0.0.1:$REPL_ROUTER_PORT" -cache 0 &
PIDS+=($!)
wait_healthy "http://127.0.0.1:$REPL_ROUTER_PORT"

# Sanity: the replicated router answers while both replicas are up.
RESP="$(curl -sf -X POST "http://127.0.0.1:$REPL_ROUTER_PORT/v1/topk" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":2}')"
python3 - "$RESP" <<'EOF'
import json, sys
matches = json.loads(sys.argv[1])["matches"]
assert len(matches) == 2, f"replicated router: want 2 matches, got {len(matches)}"
assert matches[0]["dist"] == 0, matches[0]
EOF

# Kill the primary replica outright — no drain, no goodbye.
kill -KILL "$DOOMED_PID"
wait "$DOOMED_PID" 2>/dev/null || true

RESP="$(curl -sf -X POST "http://127.0.0.1:$REPL_ROUTER_PORT/v1/topk" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":2}')"
echo "post-SIGKILL response: $RESP"
python3 - "$RESP" <<'EOF'
import json, sys
resp = json.loads(sys.argv[1])
matches = resp["matches"]
assert len(matches) == 2, f"router lost results after replica SIGKILL: {len(matches)}"
assert matches[0]["doc"] == "smoke" and matches[0]["dist"] == 0, matches[0]
stats = resp["stats"]
assert stats.get("retried") or stats.get("hedged"), \
    f"failover left no retry/hedge trace in stats: {stats}"
EOF

# --- Corruption quarantine ------------------------------------------------
# Flip ONE byte in the middle of a leaf store file while the leaf is
# down. The restarted leaf's startup scrub must catch the bad checksum,
# quarantine that document, and keep serving the survivors — and the
# router keeps answering with the loss reported in stats.quarantined,
# with no reconfiguration on its side.
curl -sf -X POST "http://127.0.0.1:$LEAF_PORT/v1/docs" \
  -H 'Content-Type: application/json' \
  -d '{"name":"doomed","xml":"<r><rec><a>1</a><b>2</b></rec></r>"}' >/dev/null

kill -TERM "$LEAF_PID"
for _ in $(seq 1 50); do
  kill -0 "$LEAF_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$LEAF_PID" 2>/dev/null && { echo "FAIL: leaf would not stop for the corruption leg" >&2; exit 1; }

# "doomed" was the leaf's second ingest, so its store is docs/2.store.
python3 - "$WORKDIR/leaf-corpus/docs/2.store" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0xFF
open(path, "wb").write(bytes(data))
EOF

"$WORKDIR/tasmd" -dir "$WORKDIR/leaf-corpus" -addr "127.0.0.1:$LEAF_PORT" &
PIDS+=($!)
wait_healthy "http://127.0.0.1:$LEAF_PORT"

RESP="$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/topk" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":5}')"
echo "post-corruption response: $RESP"
python3 - "$RESP" <<'EOF'
import json, sys
resp = json.loads(sys.argv[1])
docs = [m["doc"] for m in resp["matches"]]
assert "doomed" not in docs, f"quarantined document still answering: {docs}"
assert "smoke" in docs, f"survivor vanished after quarantine: {docs}"
assert resp["stats"].get("quarantined") == 1, \
    f"router stats do not report the quarantined document: {resp['stats']}"
EOF

curl -sf "http://127.0.0.1:$LEAF_PORT/metrics" | grep -q '^tasmd_quarantined_docs 1$' \
  || { echo "FAIL: leaf /metrics lacks tasmd_quarantined_docs 1" >&2; exit 1; }

# The router refuses ingests (leaf-only) ...
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$ROUTER_PORT/v1/docs" \
  -H 'Content-Type: application/json' -d '{"name":"x","xml":"<a/>"}')"
[ "$CODE" = "501" ] || { echo "FAIL: router ingest returned $CODE, want 501" >&2; exit 1; }

# ... and the leaf serves DELETE /v1/docs/{name}.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://127.0.0.1:$LEAF_PORT/v1/docs/smoke")"
[ "$CODE" = "200" ] || { echo "FAIL: leaf delete returned $CODE, want 200" >&2; exit 1; }

# Graceful shutdown: SIGTERM must terminate every surviving process
# promptly (the SIGKILLed replica is already gone).
for pid in "${PIDS[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: tasmd pid $pid survived SIGTERM for 5s" >&2
    exit 1
  fi
done
PIDS=()

echo "shard smoke test: OK"
