#!/usr/bin/env bash
# Two-process tasmd smoke test: a router (-shards) scatter-gathering over
# a leaf (-dir) must answer a top-k query ingested into the leaf. Run
# from the repository root; exits non-zero on any failure.
set -euo pipefail

LEAF_PORT="${LEAF_PORT:-18421}"
ROUTER_PORT="${ROUTER_PORT:-18422}"
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_healthy() { # url
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  return 1
}

go build -o "$WORKDIR/tasmd" ./cmd/tasmd

"$WORKDIR/tasmd" -dir "$WORKDIR/leaf-corpus" -addr "127.0.0.1:$LEAF_PORT" &
PIDS+=($!)
wait_healthy "http://127.0.0.1:$LEAF_PORT"

# Ingest into the leaf.
curl -sf -X POST "http://127.0.0.1:$LEAF_PORT/v1/docs" \
  -H 'Content-Type: application/json' \
  -d '{"name":"smoke","xml":"<r><rec><a>1</a><b>2</b></rec><rec><a>1</a></rec></r>"}' >/dev/null

# The router scatter-gathers over the leaf (second process, second tier).
"$WORKDIR/tasmd" -shards "http://127.0.0.1:$LEAF_PORT" -addr "127.0.0.1:$ROUTER_PORT" &
PIDS+=($!)
wait_healthy "http://127.0.0.1:$ROUTER_PORT"

# Query through the router; the exact subtree lives in the leaf.
RESP="$(curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/v1/topk" \
  -H 'Content-Type: application/json' \
  -d '{"query":"{rec{a{1}}{b{2}}}","k":2,"trees":true}')"
echo "router response: $RESP"

python3 - "$RESP" <<'EOF'
import json, sys
resp = json.loads(sys.argv[1])
matches = resp["matches"]
assert len(matches) == 2, f"want 2 matches, got {len(matches)}"
assert matches[0]["doc"] == "smoke", matches[0]
assert matches[0]["dist"] == 0, "exact subtree must rank first with distance 0"
assert matches[0]["tree"], "trees=true must return the matched subtree"
EOF

# The router refuses ingests (leaf-only) ...
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$ROUTER_PORT/v1/docs" \
  -H 'Content-Type: application/json' -d '{"name":"x","xml":"<a/>"}')"
[ "$CODE" = "501" ] || { echo "FAIL: router ingest returned $CODE, want 501" >&2; exit 1; }

# ... and the leaf serves DELETE /v1/docs/{name}.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://127.0.0.1:$LEAF_PORT/v1/docs/smoke")"
[ "$CODE" = "200" ] || { echo "FAIL: leaf delete returned $CODE, want 200" >&2; exit 1; }

# Graceful shutdown: SIGTERM must terminate both processes promptly.
kill -TERM "${PIDS[1]}" "${PIDS[0]}"
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: tasmd pid $pid survived SIGTERM for 5s" >&2
    exit 1
  fi
done
PIDS=()

echo "shard smoke test: OK"
