package tasm

// End-to-end integration tests: the full pipeline a production deployment
// would run — generate → persist → profile → stream-match — with every
// path (XML, binary store, in-memory, parallel) required to agree.

import (
	"bytes"
	"math/rand"
	"os/exec"
	"strings"
	"testing"

	"tasm/internal/datagen"
	"tasm/internal/stats"
)

func TestPipelineAllPathsAgree(t *testing.T) {
	m := New()

	// 1. Generate a corpus and keep its postorder items.
	items, err := CollectQueue(datagen.DBLP(800).Queue(m.Dict(), 11))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := m.BuildTree(NewSliceQueue(items))
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist to the binary store and to XML.
	var store bytes.Buffer
	if err := m.SaveStore(&store, doc); err != nil {
		t.Fatal(err)
	}
	var xmlBuf strings.Builder
	if err := writeXMLForTest(&xmlBuf, doc); err != nil {
		t.Fatal(err)
	}

	// 3. Profile the store: it must describe the same document.
	p, err := stats.Compute(NewSliceQueue(items))
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != doc.Size() || p.RootFanout != 800 {
		t.Fatalf("profile %+v does not match document (%d nodes)", p, doc.Size())
	}

	// 4. Query through every path.
	rng := rand.New(rand.NewSource(11))
	q, err := datagen.QueryFromDocument(doc, rng, 12)
	if err != nil {
		t.Fatal(err)
	}
	const k = 7

	inMem, err := m.TopK(q, doc, k)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := m.TopKDynamic(q, doc, k)
	if err != nil {
		t.Fatal(err)
	}
	storeQ, err := m.OpenStore(bytes.NewReader(store.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := m.TopKStream(q, storeQ, k)
	if err != nil {
		t.Fatal(err)
	}
	fromXML, err := m.TopKStream(q, m.XMLQueue(strings.NewReader(xmlBuf.String())), k)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := m.TopKParallel(q, NewSliceQueue(items), k, 4)
	if err != nil {
		t.Fatal(err)
	}

	paths := map[string][]Match{
		"dynamic": dynamic, "store": fromStore, "xml": fromXML, "parallel": parallel,
	}
	for name, got := range paths {
		if len(got) != len(inMem) {
			t.Fatalf("%s: %d matches vs %d", name, len(got), len(inMem))
		}
		for i := range got {
			if got[i].Dist != inMem[i].Dist {
				t.Fatalf("%s: rank %d distance %g vs %g", name, i, got[i].Dist, inMem[i].Dist)
			}
		}
	}

	// 5. The best match must carry a valid tree whose distance matches.
	best := inMem[0]
	if best.Tree == nil {
		t.Fatal("best match has no tree")
	}
	if err := best.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := m.Distance(q, best.Tree); d != best.Dist {
		t.Fatalf("recomputed distance %g != reported %g", d, best.Dist)
	}
	// And the edit script must realize exactly that distance.
	var sum float64
	for _, op := range m.EditScript(q, best.Tree) {
		sum += op.Cost
	}
	if sum != best.Dist {
		t.Fatalf("edit script cost %g != distance %g", sum, best.Dist)
	}
}

// writeXMLForTest serializes through the public API.
func writeXMLForTest(w *strings.Builder, doc *Tree) error {
	return New().WriteXML(w, doc)
}

// TestExamplesCompileAndRun smoke-tests every example main. Guarded by
// -short because each `go run` pays a build.
func TestExamplesCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	for _, ex := range []string{"quickstart", "dblp", "xmark", "streaming", "keyword"} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+ex).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", ex)
			}
		})
	}
}
