// Scalability comparison on XMark-style documents — the workload of the
// paper's Section VII-A: queries are randomly chosen subtrees of an
// auction-site document, and TASM-postorder is compared against the
// TASM-dynamic baseline as the document grows.
//
//	go run ./examples/xmark
//
// TASM-dynamic computes one huge dynamic program over the whole document
// (O(|Q|·|T|) memory); TASM-postorder streams the document through a
// prefix ring buffer and only ever scores subtrees within the τ bound.
// Both produce the same ranking.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tasm"
	"tasm/internal/datagen"
)

func main() {
	const k = 5
	for _, scale := range []int{1, 2, 4} {
		m := tasm.New()
		doc, err := m.BuildTree(datagen.XMark(scale).Queue(m.Dict(), 7))
		if err != nil {
			log.Fatal(err)
		}

		// The paper's query workload: a randomly chosen 16-node subtree
		// of the document itself.
		rng := rand.New(rand.NewSource(7))
		query, err := datagen.QueryFromDocument(doc, rng, 16)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		dyn, err := m.TopKDynamic(query, doc, k)
		if err != nil {
			log.Fatal(err)
		}
		tDyn := time.Since(start)

		start = time.Now()
		pos, err := m.TopK(query, doc, k)
		if err != nil {
			log.Fatal(err)
		}
		tPos := time.Since(start)

		fmt.Printf("scale %d: %d nodes, height %d, |Q|=%d, τ=%d\n",
			scale, doc.Size(), doc.Height(), query.Size(), m.Tau(query, k))
		fmt.Printf("  TASM-dynamic   %8v   best distances: %v\n", tDyn.Round(time.Millisecond), dists(dyn))
		fmt.Printf("  TASM-postorder %8v   best distances: %v\n", tPos.Round(time.Millisecond), dists(pos))
		for i := range dyn {
			if dyn[i].Dist != pos[i].Dist {
				log.Fatalf("rankings disagree at rank %d", i)
			}
		}
		fmt.Println("  rankings agree ✓")
	}
}

func dists(ms []tasm.Match) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Dist
	}
	return out
}
