// Quickstart: find the top-k subtrees of an XML document that are most
// similar to a small query tree.
//
//	go run ./examples/quickstart
//
// The query is written in bracket notation — "{a{b}{c}}" is a node a with
// children b and c — and the document is plain XML. Distances are unit-cost
// tree edit distances: the number of node insertions, deletions and
// renames needed to turn the query into the matched subtree.
package main

import (
	"fmt"
	"log"
	"strings"

	"tasm"
)

const catalog = `
<library>
  <book>
    <author>Ada Lovelace</author>
    <title>Notes on the Analytical Engine</title>
    <year>1843</year>
  </book>
  <book>
    <author>Donald Knuth</author>
    <title>The Art of Computer Programming</title>
    <year>1968</year>
  </book>
  <journal>
    <title>Communications of the ACM</title>
    <issue>12</issue>
  </journal>
  <book>
    <author>Edgar Codd</author>
    <title>A Relational Model of Data</title>
    <year>1970</year>
  </book>
</library>`

func main() {
	m := tasm.New()

	doc, err := m.ParseXML(strings.NewReader(catalog))
	if err != nil {
		log.Fatal(err)
	}

	// Look for books by Knuth — the year is misremembered and the title
	// is partial, but approximate matching tolerates both.
	query, err := m.ParseBracket(
		"{book{author{Donald Knuth}}{title{Art of Programming}}{year{1969}}}")
	if err != nil {
		log.Fatal(err)
	}

	matches, err := m.TopK(query, doc, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query has %d nodes; TASM will never materialize a subtree larger than τ = %d nodes\n\n",
		query.Size(), m.Tau(query, 3))
	for i, match := range matches {
		fmt.Printf("#%d  distance %.0f  (subtree at postorder position %d, %d nodes)\n",
			i+1, match.Dist, match.Pos, match.Size)
		fmt.Printf("    %s\n", match.Tree)
	}
}
