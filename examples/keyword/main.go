// Approximate XML keyword search on top of TASM — the Section VIII
// future-work direction of the paper, built entirely from its machinery:
// the keyword set becomes a star-shaped query, a cost model makes missing
// keywords expensive and surrounding context cheap, and the established
// tree edit distance replaces the ad-hoc content/structure score
// combinations of the keyword-search literature.
//
//	go run ./examples/keyword
package main

import (
	"fmt"
	"log"
	"strings"

	"tasm"
	"tasm/keyword"
)

const catalog = `
<library>
  <section name="computing">
    <book><author>Knuth</author><title>The Art of Computer Programming</title><year>1968</year></book>
    <book><author>Codd</author><title>A Relational Model</title><year>1970</year></book>
    <note>Knuth lectures archived in 2010</note>
  </section>
  <section name="history">
    <book><author>Gibbon</author><title>Decline and Fall</title><year>1776</year></book>
    <shelf><box>Knuth</box><label>misc</label><far><deeper><deepest><corner>1968</corner></deepest></deeper></far></shelf>
  </section>
</library>`

func main() {
	m := tasm.New()
	doc, err := m.ParseXML(strings.NewReader(catalog))
	if err != nil {
		log.Fatal(err)
	}

	keywords := []string{"Knuth", "1968"}
	s, err := keyword.New(m.Dict(), keywords, keyword.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keywords: %v  (compiled to star query %s)\n\n", keywords, s.Query())

	results, err := s.RunTree(doc)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("#%d  score %.1f  (%d nodes at position %d)", i+1, r.Score, r.Tree.Size(), r.Pos)
		if len(r.Missing) > 0 {
			fmt.Printf("  — missing %v", r.Missing)
		}
		fmt.Printf("\n    %s\n", r.Tree)
	}

	fmt.Println("\nthe concise book covering both keywords beats both the scattered")
	fmt.Println("shelf (keywords far apart) and any partial single-keyword answer.")
}
