// Duplicate detection in a bibliography — the data-cleaning scenario from
// the paper's introduction: given a (possibly dirty) bibliographic record,
// find the entries of a large DBLP-style corpus it most likely duplicates.
//
//	go run ./examples/dblp
//
// A synthetic DBLP-like corpus is generated; one of its records is copied
// and perturbed the way duplicate entries typically are (author dropped,
// title word changed, year off by one); TASM then retrieves the original
// as the closest match among thousands of records.
package main

import (
	"fmt"
	"log"

	"tasm"
	"tasm/internal/datagen"
)

func main() {
	m := tasm.New()

	// A 5000-record bibliography (~65k nodes). In the paper this is the
	// real DBLP with 26M nodes; algorithm and bounds are identical, see
	// DESIGN.md §3.
	const records = 5000
	fmt.Printf("generating %d bibliography records...\n", records)
	items, err := tasm.CollectQueue(datagen.DBLP(records).Queue(m.Dict(), 42))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := m.BuildTree(tasm.NewSliceQueue(items))
	if err != nil {
		log.Fatal(err)
	}

	// Take an existing record and dirty it: this simulates the same
	// publication entered twice by different curators.
	originalPos := pickArticle(doc)
	original := doc.Subtree(originalPos)
	dirty := perturb(original.Node(original.Root()))
	query := m.FromNode(dirty)

	const k = 5
	fmt.Printf("\noriginal record (document position %d):\n    %s\n", originalPos+1, original)
	fmt.Printf("dirty duplicate used as query:\n    %s\n", query)
	fmt.Printf("query: %d nodes; τ = %d — no subtree larger than τ is ever scored\n\n",
		query.Size(), m.Tau(query, k))

	matches, err := m.TopK(query, doc, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most similar existing records:")
	for i, match := range matches {
		marker := ""
		if match.Pos == originalPos+1 {
			marker = "   ← the original"
		}
		fmt.Printf("#%d  distance %.1f%s\n    %s\n", i+1, match.Dist, marker, match.Tree)
	}
}

// pickArticle returns the postorder index of a mid-corpus article record.
func pickArticle(doc *tasm.Tree) int {
	root := doc.Root()
	seen := 0
	for i := 0; i < doc.Size(); i++ {
		if doc.Parent(i) == root && doc.Label(i) == "article" {
			seen++
			if seen == 1000 {
				return i
			}
		}
	}
	log.Fatal("no article record found")
	return -1
}

// perturb dirties a record the way duplicate entries typically differ:
// the title gains a subtitle word and the year is off by one. Each node
// label is one unit of edit cost, so the original stays within distance 2
// while every unrelated record differs in at least the author names too.
func perturb(rec *tasm.Node) *tasm.Node {
	out := tasm.NewNode(rec.Label)
	for _, c := range rec.Children {
		switch c.Label {
		case "title":
			words := c.Children[0].Label
			out.AddChild(tasm.NewNode("title", tasm.NewNode(words+" study")))
		case "year":
			y := c.Children[0].Label
			out.AddChild(tasm.NewNode("year", tasm.NewNode(y[:3]+string('0'+(y[3]-'0'+1)%10))))
		default:
			out.AddChild(c)
		}
	}
	return out
}
