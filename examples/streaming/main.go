// Constant-memory matching over a document that is never materialized —
// the headline capability of TASM-postorder (paper Section VI, Figure 10):
// the document flows straight from its source through the prefix ring
// buffer, and the algorithm's footprint is independent of the document
// size.
//
//	go run ./examples/streaming
//
// Here the source is the synthetic DBLP bibliography generator; in
// production it would be an XML file (Matcher.XMLQueue), a binary store
// (Matcher.OpenStore), or any custom tasm.Queue implementation over a
// database.
package main

import (
	"fmt"
	"log"
	"runtime"

	"tasm"
	"tasm/internal/datagen"
)

func main() {
	m := tasm.New()

	// A bibliographic pattern: find the records closest to this shape.
	query, err := m.ParseBracket(
		"{article" +
			"{author{Anna Weber}}" +
			"{title{information process}}" +
			"{year{2005}}" +
			"{journal{VLDBJ}}}")
	if err != nil {
		log.Fatal(err)
	}
	const k = 3

	// Warm up the dictionary so first-run interning does not pollute the
	// comparison (real deployments parse many documents per process).
	if _, err := m.TopKStream(query, datagen.DBLP(2000).Queue(m.Dict(), 99), k); err != nil {
		log.Fatal(err)
	}

	for _, records := range []int{10000, 40000, 160000} {
		queue := datagen.DBLP(records).Queue(m.Dict(), 99)

		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		matches, err := m.TopKStream(query, queue, k)
		if err != nil {
			log.Fatal(err)
		}

		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		grew := (int64(after.HeapAlloc) - int64(before.HeapAlloc)) / 1024

		nodes := records * 13 // ≈ average record size
		fmt.Printf("document: %7d records (≈%8d nodes)  τ=%d  heap growth after run: %+5d KB\n",
			records, nodes, m.Tau(query, k), grew)
		for i, match := range matches {
			fmt.Printf("   #%d distance %.1f at position %d: %s\n",
				i+1, match.Dist, match.Pos, match.Tree)
		}
	}
	fmt.Println("\nheap growth stays flat while the document grows 16×:")
	fmt.Println("TASM-postorder's memory depends only on |Q| and k (Theorem 5).")
}
