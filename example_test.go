package tasm_test

import (
	"fmt"
	"strings"

	"tasm"
)

// The examples below double as executable documentation on pkg.go.dev and
// as golden tests for the public API.

func ExampleMatcher_TopK() {
	m := tasm.New()
	doc, _ := m.ParseXML(strings.NewReader(
		`<dblp>
		   <article><author>John</author><title>X1</title></article>
		   <article><author>Peter</author><title>X3</title></article>
		   <book><title>X2</title></book>
		 </dblp>`))
	query, _ := m.ParseBracket("{article{author{John}}{title{X1}}}")

	matches, _ := m.TopK(query, doc, 2)
	for _, match := range matches {
		fmt.Printf("distance %.0f: %s\n", match.Dist, match.Tree)
	}
	// Output:
	// distance 0: {article{author{John}}{title{X1}}}
	// distance 2: {article{author{Peter}}{title{X3}}}
}

func ExampleMatcher_TopKStream() {
	m := tasm.New()
	query, _ := m.ParseBracket("{book{title{X2}}}")

	// Stream the document: it is never materialized, so memory stays
	// independent of the document size (Theorem 5 of the paper).
	doc := m.XMLQueue(strings.NewReader(
		`<dblp><article><title>X1</title></article><book><title>X2</title></book></dblp>`))

	matches, _ := m.TopKStream(query, doc, 1)
	fmt.Printf("best: %s at distance %.0f\n", matches[0].Tree, matches[0].Dist)
	// Output:
	// best: {book{title{X2}}} at distance 0
}

func ExampleMatcher_Distance() {
	m := tasm.New()
	// The worked example of the paper (Figure 2/3): δ(G, H) = 4.
	g, _ := m.ParseBracket("{a{b}{c}}")
	h, _ := m.ParseBracket("{x{a{b}{d}}{a{b}{c}}}")
	fmt.Println(m.Distance(g, h))
	// Output:
	// 4
}

func ExampleMatcher_EditScript() {
	m := tasm.New()
	a, _ := m.ParseBracket("{a{b}{c}}")
	b, _ := m.ParseBracket("{a{b}{x}}")
	for _, op := range m.EditScript(a, b) {
		switch op.Op {
		case tasm.OpMatch:
			fmt.Printf("match  %s\n", a.Label(op.QNode))
		case tasm.OpRename:
			fmt.Printf("rename %s -> %s\n", a.Label(op.QNode), b.Label(op.TNode))
		case tasm.OpDelete:
			fmt.Printf("delete %s\n", a.Label(op.QNode))
		case tasm.OpInsert:
			fmt.Printf("insert %s\n", b.Label(op.TNode))
		}
	}
	// Output:
	// match  a
	// rename c -> x
	// match  b
}

func ExampleMatcher_Tau() {
	m := tasm.New()
	// Section VI-B: a 15-node query with k=20 under unit costs bounds
	// every possible answer subtree at 2·15+20 = 50 nodes.
	query, _ := m.ParseBracket(
		"{article{author{a}}{author{b}}{title{t1 t2 t3}}{year{2009}}{journal{j}}{volume{7}}{pages{1}}}")
	fmt.Println(query.Size(), m.Tau(query, 20))
	// Output:
	// 15 50
}
