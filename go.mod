module tasm

go 1.24
