package tasm

// Stress and robustness tests: degenerate tree shapes (deep chains, wide
// stars) pushed through every layer — parser, postorder queues, ring
// buffer, TED, TASM — to catch recursion blowups, off-by-ones at buffer
// boundaries, and quadratic traps.

import (
	"fmt"
	"strings"
	"testing"

	"tasm/internal/core"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/testenv"
	"tasm/internal/tree"
)

// chainItems yields the postorder queue of a unary chain of depth n:
// sizes 1, 2, …, n.
func chainItems(d dict.Dict, n int) []postorder.Item {
	l := d.Intern("c")
	items := make([]postorder.Item, n)
	for i := range items {
		items[i] = postorder.Item{Label: l, Size: i + 1}
	}
	return items
}

// starItems yields a root with n leaf children.
func starItems(d dict.Dict, n int) []postorder.Item {
	leaf := d.Intern("leaf")
	root := d.Intern("root")
	items := make([]postorder.Item, n+1)
	for i := 0; i < n; i++ {
		items[i] = postorder.Item{Label: leaf, Size: 1}
	}
	items[n] = postorder.Item{Label: root, Size: n + 1}
	return items
}

func TestDeepChainThroughRingBuffer(t *testing.T) {
	// A 200k-deep chain is the worst case for tree shape; the ring buffer
	// must skip every non-candidate ancestor in O(1) each.
	d := dict.New()
	const depth = 200_000
	items := chainItems(d, depth)
	cands, err := prb.Candidates(d, postorder.NewSliceQueue(items), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Only the bottom 10 nodes form a candidate subtree.
	if len(cands) != 1 || cands[0].Tree.Size() != 10 {
		t.Fatalf("chain candidates = %d (first size %d), want 1 of size 10",
			len(cands), cands[0].Tree.Size())
	}
}

func TestDeepChainTASM(t *testing.T) {
	d := dict.New()
	const depth = 50_000
	items := chainItems(d, depth)
	q := tree.MustParse(d, "{c{c{c}}}")
	got, err := core.PostorderStream(q, postorder.NewSliceQueue(items), 3, core.Options{NoTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Dist != 0 {
		t.Fatalf("chain top-3 = %+v", got)
	}
}

func TestDeepChainParsers(t *testing.T) {
	// Deep bracket notation exercises parser recursion; keep the depth at
	// a level real documents exceed but goroutine stacks handle (they
	// grow to 1GB by default). TASM_QUICK shrinks the chain: -race makes
	// the parser recursion roughly an order of magnitude slower.
	depth := 20_000
	if testenv.Quick() {
		depth = 4_000
	}
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("{c")
	}
	sb.WriteString(strings.Repeat("}", depth))
	d := dict.New()
	tr, err := tree.Parse(d, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != depth || tr.Height() != depth {
		t.Fatalf("chain parse: size %d height %d", tr.Size(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// And back out through String.
	if got := len(tr.String()); got != depth*3 {
		t.Fatalf("string length %d, want %d", got, depth*3)
	}
}

func TestDeepXML(t *testing.T) {
	const depth = 5_000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	m := New()
	tr, err := m.ParseXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != depth+1 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestWideStarTASM(t *testing.T) {
	// One million leaves under one root: the DBLP shape taken to the
	// extreme. The ring buffer holds τ+1 nodes; everything streams.
	// TASM_QUICK keeps the shape but narrows the star.
	d := dict.New()
	width := 1_000_000
	if testenv.Quick() {
		width = 100_000
	}
	items := starItems(d, width)
	q := tree.MustParse(d, "{leaf}")
	got, err := core.PostorderStream(q, postorder.NewSliceQueue(items), 5, core.Options{NoTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d matches", len(got))
	}
	for _, match := range got {
		if match.Dist != 0 {
			t.Fatalf("leaf query on star: dist %g", match.Dist)
		}
	}
}

func TestWideStarStats(t *testing.T) {
	d := dict.New()
	items := starItems(d, 100_000)
	tr, err := postorder.BuildTree(d, postorder.NewSliceQueue(items))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fanout(tr.Root()) != 100_000 {
		t.Fatalf("fanout = %d", tr.Fanout(tr.Root()))
	}
	if tr.Height() != 2 {
		t.Fatalf("height = %d", tr.Height())
	}
}

func TestBoundaryTaus(t *testing.T) {
	// τ exactly the document size, one below, one above: the candidate
	// partition must stay exact at each boundary.
	d := dict.New()
	tr := tree.MustParse(d, "{a{b{c}{d}}{e{f}{g}}}")
	n := tr.Size()
	for tau := 1; tau <= n+2; tau++ {
		cands, err := prb.Candidates(d, postorder.FromTree(tr), tau)
		if err != nil {
			t.Fatalf("τ=%d: %v", tau, err)
		}
		want := prb.CandidatesOf(tr, tau)
		if len(cands) != len(want) {
			t.Fatalf("τ=%d: %d candidates, want %d", tau, len(cands), len(want))
		}
		covered := 0
		for i, c := range cands {
			if c.Root != want[i]+1 {
				t.Fatalf("τ=%d: candidate %d at %d, want %d", tau, i, c.Root, want[i]+1)
			}
			covered += c.Tree.Size()
		}
		// Candidates plus non-candidate ancestors partition the tree.
		nonCand := 0
		for i := 0; i < n; i++ {
			if tr.SubtreeSize(i) > tau {
				nonCand++
			}
		}
		if covered+nonCand != n {
			t.Fatalf("τ=%d: %d covered + %d non-candidates != %d nodes", tau, covered, nonCand, n)
		}
	}
}

func TestManyQueriesOneDocument(t *testing.T) {
	// Reusing one Matcher across many queries must stay consistent
	// (dictionary growth, computer reuse inside TopK).
	m := New()
	doc, err := m.ParseXML(strings.NewReader(
		`<lib><b><t>x</t></b><b><t>y</t></b><c><t>z</t></c></lib>`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		q, err := m.ParseBracket(fmt.Sprintf("{b{t{q%d}}}", i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.TopK(q, doc, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Dist != 1 {
			t.Fatalf("iteration %d: %+v", i, got)
		}
	}
}

func TestLabelsWithExoticContent(t *testing.T) {
	m := New()
	labels := []string{
		"", " ", "\t\n", "emoji 🌲", "\x00nul", "very " + strings.Repeat("long ", 200) + "label",
		`back\slash`, "{brace}", "<tag>", "&amp;",
	}
	for _, l := range labels {
		a := m.FromNode(NewNode("r", NewNode(l)))
		b := m.FromNode(NewNode("r", NewNode(l)))
		if d := m.Distance(a, b); d != 0 {
			t.Errorf("label %q: distance %g, want 0", l, d)
		}
		c := m.FromNode(NewNode("r", NewNode(l+"!")))
		if d := m.Distance(a, c); d != 1 {
			t.Errorf("label %q: rename distance %g, want 1", l, d)
		}
	}
}
