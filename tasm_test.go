package tasm

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const sampleXML = `<dblp>
  <article><author>John Smith</author><title>Tree Matching at Scale</title><year>2008</year></article>
  <article><author>Mary Jones</author><title>Approximate XML Joins</title><year>2007</year></article>
  <inproceedings><author>Peter Novak</author><title>Top-k Queries</title><booktitle>ICDE</booktitle></inproceedings>
  <book><author>Anna Weber</author><title>Databases</title><publisher>X</publisher></book>
</dblp>`

func TestTopKOnXML(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.ParseBracket("{article{author{John Smith}}{title{Tree Matching at Scale}}{year{2008}}}")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.TopK(q, doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches", len(got))
	}
	if got[0].Dist != 0 {
		t.Errorf("best match dist = %g, want exact match", got[0].Dist)
	}
	if got[0].Tree.Label(got[0].Tree.Root()) != "article" {
		t.Errorf("best match root = %s", got[0].Tree.Label(got[0].Tree.Root()))
	}
	if got[1].Dist <= 0 {
		t.Errorf("second match dist = %g, want > 0", got[1].Dist)
	}
}

func TestTopKStreamMatchesTopK(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.ParseBracket("{article{author}{title}}")
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := m.TopK(q, doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := m.TopKStream(q, m.XMLQueue(strings.NewReader(sampleXML)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inMem) != len(stream) {
		t.Fatalf("lengths differ: %d vs %d", len(inMem), len(stream))
	}
	for i := range inMem {
		if inMem[i].Dist != stream[i].Dist || inMem[i].Pos != stream[i].Pos {
			t.Errorf("rank %d: in-memory (%g,%d) vs stream (%g,%d)",
				i, inMem[i].Dist, inMem[i].Pos, stream[i].Dist, stream[i].Pos)
		}
	}
}

func TestDynamicAgrees(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.ParseBracket("{book{author}{title}}")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.TopK(q, doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.TopKDynamic(q, doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Errorf("rank %d: postorder %g vs dynamic %g", i, a[i].Dist, b[i].Dist)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveStore(&buf, doc); err != nil {
		t.Fatal(err)
	}
	q, err := m.ParseBracket("{article{author}{title}}")
	if err != nil {
		t.Fatal(err)
	}
	queue, err := m.OpenStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := m.TopKStream(q, queue, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.TopK(q, doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i].Dist != fromStore[i].Dist || direct[i].Pos != fromStore[i].Pos {
			t.Errorf("rank %d differs between direct and store-backed runs", i)
		}
	}
}

func TestSaveStoreRejectsForeignTree(t *testing.T) {
	m1, m2 := New(), New()
	doc, err := m1.ParseBracket("{a{b}}")
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SaveStore(&bytes.Buffer{}, doc); err == nil {
		t.Error("saving a tree from another matcher should error")
	}
}

func TestDistanceAndTau(t *testing.T) {
	m := New()
	a, _ := m.ParseBracket("{a{b}{c}}")
	b, _ := m.ParseBracket("{x{a{b}{d}}{a{b}{c}}}")
	if got := m.Distance(a, b); got != 4 {
		t.Errorf("Distance = %g, want 4 (paper Figure 3)", got)
	}
	if got := m.Tau(a, 5); got != 11 {
		t.Errorf("Tau = %d, want 2·3+5 = 11", got)
	}
}

func TestUnitCostConstructor(t *testing.T) {
	m := New(WithCostModel(UnitCost()))
	a, _ := m.ParseBracket("{a}")
	b, _ := m.ParseBracket("{b}")
	if got := m.Distance(a, b); got != 1 {
		t.Errorf("unit distance = %g, want 1", got)
	}
}

func TestCostModelOptions(t *testing.T) {
	pl, err := PerLabelCost(map[string]float64{"title": 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := New(WithCostModel(pl))
	a, _ := m.ParseBracket("{article{title}}")
	b, _ := m.ParseBracket("{article}")
	// Deleting title costs 3; renaming it into nothing is not possible, but
	// the optimal mapping may rename article→title etc. — just assert > 1.
	if got := m.Distance(a, b); got <= 1 {
		t.Errorf("Distance under per-label costs = %g, want > 1", got)
	}

	fw, err := FanoutWeightedCost(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(WithCostModel(fw), WithDocumentCostBound(50))
	q, _ := m2.ParseBracket("{a{b}}")
	if m2.Tau(q, 1) < 2*q.Size()+1 {
		t.Errorf("Tau with fanout model too small: %d", m2.Tau(q, 1))
	}
}

func TestFromNode(t *testing.T) {
	m := New()
	tr := m.FromNode(NewNode("a", NewNode("b"), NewNode("c")))
	if tr.Size() != 3 || tr.String() != "{a{b}{c}}" {
		t.Errorf("FromNode = %s", tr)
	}
}

func TestProbeViaPublicAPI(t *testing.T) {
	m := New()
	doc, _ := m.ParseXML(strings.NewReader(sampleXML))
	q, _ := m.ParseBracket("{article{author}{title}}")
	p := &recordingProbe{}
	m.SetProbe(p)
	if _, err := m.TopK(q, doc, 1); err != nil {
		t.Fatal(err)
	}
	if p.candidates == 0 || p.relevant == 0 {
		t.Errorf("probe saw %d candidates, %d relevant subtrees", p.candidates, p.relevant)
	}
	m.SetProbe(nil)
	if _, err := m.TopK(q, doc, 1); err != nil {
		t.Fatal(err)
	}
}

type recordingProbe struct{ relevant, candidates, pruned int }

func (p *recordingProbe) RelevantSubtree(int) { p.relevant++ }
func (p *recordingProbe) Candidate(int)       { p.candidates++ }
func (p *recordingProbe) Pruned(int)          { p.pruned++ }

func TestTopKParallelPublic(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := m.ParseBracket("{article{author}{title}}")
	items, err := CollectQueue(m.XMLQueue(strings.NewReader(sampleXML)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.TopKParallel(q, NewSliceQueue(items), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.TopK(q, doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Dist != par[i].Dist {
			t.Errorf("rank %d: %g vs %g", i, par[i].Dist, seq[i].Dist)
		}
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WriteXML(&sb, doc); err != nil {
		t.Fatal(err)
	}
	again, err := New().ParseXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if !doc.Equal(again) {
		t.Error("WriteXML round trip changed the tree")
	}
}

func TestTopKBatch(t *testing.T) {
	m := New()
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := m.ParseBracket("{article{author}{title}}")
	q2, _ := m.ParseBracket("{book{author{Anna Weber}}}")
	items, err := CollectQueue(m.XMLQueue(strings.NewReader(sampleXML)))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.TopKBatch([]*Tree{q1, q2}, NewSliceQueue(items), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("got %d result sets", len(batch))
	}
	for i, q := range []*Tree{q1, q2} {
		single, err := m.TopK(q, doc, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: %d vs %d matches", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j].Dist != batch[i][j].Dist {
				t.Errorf("query %d rank %d: %g vs %g", i, j, batch[i][j].Dist, single[j].Dist)
			}
		}
	}
}

// TestOpenCorpus exercises the corpus entry point re-exported at the
// package root: ingest through the public API, query across documents,
// and agree with a per-document Matcher scan.
func TestOpenCorpus(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("dblp", strings.NewReader(sampleXML)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("other", strings.NewReader(`<shop><item><price>3</price></item></shop>`)); err != nil {
		t.Fatal(err)
	}
	q, err := c.ParseBracket("{article{author}{title}}")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := c.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("got %d matches, want 3", len(matches))
	}

	m := New()
	mq, _ := m.ParseBracket("{article{author}{title}}")
	doc, err := m.ParseXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	single, err := m.TopK(mq, doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The dblp document dominates the ranking for this query, so the
	// corpus-wide distances must match the single-document run.
	for i := range matches {
		if matches[i].Dist != single[i].Dist || matches[i].Doc.Name != "dblp" {
			t.Fatalf("rank %d: corpus %+v vs single %+v", i, matches[i], single[i])
		}
	}
}
